"""Tests for the tiered cache hierarchy: GPU-pinned -> DRAM -> NVMe -> PFS.

Covers the tier plumbing (config parsing, per-mode cache stats, the
promotion IO planner, strict NVMe release accounting) and the two
hierarchy invariants the design leans on:

* bytes survive promotion/demotion cycles bit-identically — an entry
  that is still anywhere in the hierarchy always reads back exactly the
  bytes that went in;
* every tier respects its byte budget at all times.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import CacheOptions, DataPlaneOptions, TierSpec
from repro.dataplane import SampleCache, TieredCache, plan_promotions
from repro.hardware import NVMeDevice, TEST_NVME, SUMMIT
from repro.sim import Engine
from repro.storage import NVMeShardStore


# ---------------------------------------------------------------------------
# NVMe device: strict release accounting (regression)
# ---------------------------------------------------------------------------


def test_nvme_release_over_release_raises():
    dev = NVMeDevice(Engine(), TEST_NVME)
    dev.allocate(1024)
    with pytest.raises(ValueError, match="over-release"):
        dev.release(2048)
    with pytest.raises(ValueError):
        dev.release(-1)
    dev.release(1024)  # exact release is fine
    assert dev.used_bytes == 0
    with pytest.raises(ValueError, match="over-release"):
        dev.release(1)  # nothing left to free


def test_nvme_read_many_batches_latency():
    dev = NVMeDevice(Engine(), TEST_NVME)
    # One batched read of n requests pays one flash latency, not n.
    batched = dev.read_many(8, 8 * 4096, arrival=0.0)
    dev2 = NVMeDevice(Engine(), TEST_NVME)
    serial = max(dev2.read(4096, arrival=0.0) for _ in range(8))
    assert batched < serial
    with pytest.raises(ValueError):
        dev.read_many(0, 4096, 0.0)
    with pytest.raises(ValueError):
        dev.read_many(1, -1, 0.0)


# ---------------------------------------------------------------------------
# CacheOptions / TierSpec parsing
# ---------------------------------------------------------------------------


def test_cache_options_parse():
    opts = CacheOptions.parse("gpu:2m+dram:4m+nvme:256m")
    assert [t.kind for t in opts.tiers] == ["gpu", "dram", "nvme"]
    assert opts.tier("gpu").capacity_bytes == 2 << 20
    assert opts.dram_bytes == 4 << 20
    assert opts.tier("nvme").capacity_bytes == 256 << 20
    assert CacheOptions.parse("dram:8k").dram_bytes == 8 << 10


def test_cache_options_rejects_bad_specs():
    with pytest.raises(ValueError):
        CacheOptions.parse("gpu:2m")  # dram tier is mandatory
    with pytest.raises(ValueError):
        CacheOptions.parse("dram:4m+gpu:2m")  # order must be fastest-first
    with pytest.raises(ValueError):
        CacheOptions.parse("dram:4m+dram:8m")  # duplicate kind
    with pytest.raises(ValueError):
        CacheOptions.parse("tape:1g+dram:4m")  # unknown kind
    with pytest.raises(ValueError):
        CacheOptions.parse("dram:0")  # capacity must be positive
    with pytest.raises(ValueError):
        TierSpec(kind="dram", capacity_bytes=-1)
    with pytest.raises(ValueError):
        CacheOptions.parse("dram:4m", policy="mru")


def test_dataplane_options_cache_exclusive_with_cache_bytes():
    cache = CacheOptions.parse("dram:4m")
    with pytest.raises(ValueError):
        DataPlaneOptions(cache_bytes=1 << 20, cache=cache)
    opts = DataPlaneOptions(cache=cache, scheduler=True, prefetch_depth=2)
    assert opts.cache is cache


# ---------------------------------------------------------------------------
# per-mode CacheStats split
# ---------------------------------------------------------------------------


def test_sample_cache_splits_row_and_columnar_stats():
    cache = SampleCache(capacity_bytes=1 << 20)
    blob = np.arange(64, dtype=np.uint8)
    cache.put(1, blob)
    cache.put_columns(2, blob)
    assert cache.get(1) is not None  # row hit
    assert cache.get(2) is None  # column entry cannot serve the row path
    assert cache.get_columns(2) is not None  # columnar hit
    assert cache.get_columns(1) is None  # whole blob misses the column path
    d = cache.stats.as_dict()
    assert d["row_hits"] == 1 and d["row_misses"] == 1
    assert d["col_hits"] == 1 and d["col_misses"] == 1
    assert d["hits"] == d["row_hits"] + d["col_hits"] == 2
    assert d["misses"] == d["row_misses"] + d["col_misses"] == 2


# ---------------------------------------------------------------------------
# promotion IO planner
# ---------------------------------------------------------------------------


def test_plan_promotions_bounds_spans():
    assert plan_promotions([], 100) == []
    assert plan_promotions([10, 10, 10], 100) == [(0, 3)]
    assert plan_promotions([60, 60, 60], 100) == [(0, 1), (1, 2), (2, 3)]
    assert plan_promotions([250], 100) == [(0, 1)]  # oversize gets its own span
    spans = plan_promotions([40, 40, 40, 40, 40], 100)
    assert spans == [(0, 2), (2, 4), (4, 5)]
    covered = [i for lo, hi in spans for i in range(lo, hi)]
    assert covered == list(range(5))
    with pytest.raises(ValueError):
        plan_promotions([10], 0)
    with pytest.raises(ValueError):
        plan_promotions([-1], 100)


# ---------------------------------------------------------------------------
# hierarchy invariants (hypothesis)
# ---------------------------------------------------------------------------


def _make_tiered(gpu_kib, dram_kib, nvme_kib):
    tiers = []
    if gpu_kib:
        tiers.append(f"gpu:{gpu_kib}k")
    tiers.append(f"dram:{dram_kib}k")
    if nvme_kib:
        tiers.append(f"nvme:{nvme_kib}k")
    opts = CacheOptions.parse("+".join(tiers), policy="lru")
    nvme = None
    if nvme_kib:
        device = NVMeDevice(Engine(), TEST_NVME)
        nvme = NVMeShardStore(device, nvme_kib << 10)
    return TieredCache(
        opts,
        nvme=nvme,
        gpu_spec=SUMMIT.gpu if gpu_kib else None,
        now_fn=lambda: 0.0,
    )


def _check_budgets(cache):
    if cache.gpu is not None:
        assert 0 <= cache.gpu.used_bytes <= cache.gpu.capacity_bytes
    assert 0 <= cache.dram.used_bytes <= cache.dram.capacity_bytes
    if cache.nvme is not None:
        assert 0 <= cache.nvme.used_bytes <= cache.nvme.capacity_bytes
        assert cache.nvme.used_bytes == cache.nvme.device.used_bytes


def _payload_for(key: int, content_seed: int) -> np.ndarray:
    """Sample bytes are immutable per id in the store, so a key's payload
    is a pure function of (key, run seed): re-inserting a key always
    re-inserts identical bytes, as production does."""
    rng = np.random.default_rng((content_seed << 8) ^ key)
    nbytes = int(rng.integers(64, 2048))
    return rng.integers(0, 256, size=nbytes, dtype=np.uint8)


@given(
    gpu_kib=st.sampled_from([0, 2, 4]),
    dram_kib=st.sampled_from([2, 4, 8]),
    keys=st.lists(st.integers(min_value=0, max_value=23), min_size=1, max_size=40),
    content_seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=60, deadline=None)
def test_tier_cycles_never_corrupt_bytes(gpu_kib, dram_kib, keys, content_seed):
    """Put payloads through wire-admission, demotion (DRAM->NVMe
    write-behind), promotion (NVMe->DRAM->GPU stage-up), and demand
    promotion; any key still resident anywhere must read back the exact
    bytes that were inserted, and no tier may exceed its budget."""
    cache = _make_tiered(gpu_kib, dram_kib, nvme_kib=64)
    truth = {}
    for key in keys:
        payload = _payload_for(key, content_seed)
        if cache.put(key, payload):
            truth[key] = payload.copy()
        _check_budgets(cache)

    # Wave stage-up pulls NVMe residents back into the fast tiers.
    cache.stage_up(sorted(truth), now=0.0, column=False)
    _check_budgets(cache)

    for key, expected in truth.items():
        if not (key in cache):
            continue  # fully evicted (budget pressure) — a legal outcome
        served = cache.fast_get(key, column=False)
        if served is None:
            results, _ = cache.promote_batch([key], now=0.0, column=False)
            payload, has_header = results[key]
            assert has_header
        else:
            payload, has_header, _cost = served
            assert has_header
        np.testing.assert_array_equal(
            np.asarray(payload).reshape(-1), expected.reshape(-1)
        )
        _check_budgets(cache)


@given(
    keys=st.lists(st.integers(min_value=0, max_value=11), min_size=4, max_size=24),
    content_seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=40, deadline=None)
def test_four_tier_round_trip_bit_identical(keys, content_seed):
    """Explicit full-cycle: PFS(wire) -> DRAM -> NVMe (demotion) ->
    DRAM -> GPU (stage-up) must preserve every byte."""
    cache = _make_tiered(gpu_kib=8, dram_kib=2, nvme_kib=64)
    truth = {}
    for key in keys:
        payload = _payload_for(key, content_seed)
        if cache.put(key, payload):
            truth[key] = payload.copy()
    # The 2 KiB DRAM tier churns, pushing earlier entries to NVMe; every
    # inserted key must still be somewhere in the hierarchy.
    for key in truth:
        assert key in cache
    cache.stage_up(sorted(truth), now=0.0, column=False)
    for key, expected in truth.items():
        served = cache.fast_get(key, column=False)
        if served is None:
            results, _ = cache.promote_batch([key], now=0.0, column=False)
            payload = results[key][0]
        else:
            payload = served[0]
        np.testing.assert_array_equal(
            np.asarray(payload).reshape(-1), expected.reshape(-1)
        )
    _check_budgets(cache)


def test_belady_admission_refuses_farther_entries():
    opts = CacheOptions.parse("dram:1k", policy="belady")
    cache = TieredCache(opts)
    cache.set_future([1, 2, 3])
    a = np.full(600, 7, dtype=np.uint8)
    assert cache.put(1, a)
    # 2 is needed sooner than nothing; but inserting it would evict 1
    # (needed at position 0 vs 2's position 1) — admission refuses.
    assert not cache.put(2, a)
    assert cache.tier_stats["dram"].dropped == 1
    # A key with no future use is always refused when full.
    assert not cache.put(9, a)
    assert 1 in cache.dram


def test_nvme_shard_store_pinned_entries_survive_pressure():
    device = NVMeDevice(Engine(), TEST_NVME)
    store = NVMeShardStore(device, 4096)
    blob = bytes(range(256)) * 8  # 2 KiB
    store.stage([1], [blob], arrival=0.0)
    assert 1 in store and store.resident(1, column=False)
    # Fill with write-behind demotions; the pinned stage must survive.
    p = np.zeros(1500, dtype=np.uint8)
    assert store.write_behind(2, p, True, 0.0) is not None
    assert store.write_behind(3, p, True, 0.0) is not None  # evicts 2
    assert 1 in store
    payload, has_header = store.get(1)
    assert has_header
    assert bytes(payload) == blob
