"""Tests for the simulation tracer and model checkpointing."""

import numpy as np
import pytest

from repro.gnn import AdamW, HydraGNN, HydraGNNConfig
from repro.gnn.checkpoint import (
    checkpoint_bytes,
    load_checkpoint,
    restore_from_bytes,
    save_checkpoint,
)
from repro.graphs import IsingGenerator, collate
from repro.hardware import ParallelFileSystem, TESTBOX
from repro.sim import Engine
from repro.sim.trace import Tracer
from repro.storage import VirtualFS


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------

def test_tracer_records_span_extent():
    eng = Engine()
    tracer = Tracer(eng)

    def proc():
        with tracer.span("work", rank=3):
            yield eng.timeout(2.5)
        tracer.mark("done")

    eng.process(proc())
    eng.run()
    assert len(tracer.spans) == 1
    s = tracer.spans[0]
    assert (s.name, s.start, s.end) == ("work", 0.0, 2.5)
    assert s.duration == 2.5
    assert dict(s.meta) == {"rank": 3}
    assert tracer.marks == [(2.5, "done")]


def test_tracer_totals_and_by_name():
    eng = Engine()
    tracer = Tracer(eng)

    def proc():
        for _ in range(3):
            with tracer.span("load"):
                yield eng.timeout(1.0)
            with tracer.span("compute"):
                yield eng.timeout(2.0)

    eng.process(proc())
    eng.run()
    assert tracer.total("load") == pytest.approx(3.0)
    assert tracer.by_name() == {"load": pytest.approx(3.0), "compute": pytest.approx(6.0)}


def test_tracer_render_and_chrome_export():
    eng = Engine()
    tracer = Tracer(eng)

    def proc():
        with tracer.span("alpha", rank=1):
            yield eng.timeout(0.001)

    eng.process(proc())
    eng.run()
    text = tracer.render()
    assert "alpha" in text and "ms" in text
    events = tracer.to_chrome_trace()
    assert events[0]["name"] == "alpha"
    assert events[0]["ph"] == "X"
    assert events[0]["dur"] == pytest.approx(1000.0)  # us
    assert events[0]["tid"] == 1


def test_tracer_drops_beyond_max_events():
    eng = Engine()
    tracer = Tracer(eng, max_events=2)
    for _ in range(5):
        tracer.mark("m")
    assert len(tracer.marks) == 2
    assert "dropped" in tracer.render()


def test_tracer_manual_begin_end():
    eng = Engine()
    tracer = Tracer(eng)

    def proc():
        t0 = tracer.begin("manual")
        yield eng.timeout(4.0)
        tracer.end("manual", t0)

    eng.process(proc())
    eng.run()
    assert tracer.total("manual") == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# checkpointing
# ---------------------------------------------------------------------------

def _model_and_opt(seed=0):
    model = HydraGNN(
        HydraGNNConfig(feature_dim=1, head_dims=(1,), hidden_dim=8, n_conv_layers=1),
        seed=seed,
    )
    opt = AdamW(model.params(), lr=2e-3)
    return model, opt


def _train_steps(model, opt, batch, n):
    losses = []
    for _ in range(n):
        opt.zero_grad()
        losses.append(model.train_step_loss(batch))
        opt.step()
    return losses


def test_checkpoint_roundtrip_restores_weights_exactly():
    gen = IsingGenerator(8, seed=0)
    batch = collate([gen.make(i) for i in range(8)])
    model, opt = _model_and_opt()
    _train_steps(model, opt, batch, 3)
    blob = checkpoint_bytes(model, opt)

    model2, opt2 = _model_and_opt(seed=9)  # different init
    restore_from_bytes(blob, model2, opt2)
    for a, b in zip(model.params(), model2.params()):
        assert np.array_equal(a.value, b.value)
    assert opt2.t == opt.t and opt2.lr == opt.lr


def test_checkpoint_resume_is_bit_identical_to_uninterrupted_run():
    gen = IsingGenerator(8, seed=0)
    batch = collate([gen.make(i) for i in range(8)])

    # Uninterrupted: 6 steps.
    m_ref, o_ref = _model_and_opt()
    _train_steps(m_ref, o_ref, batch, 6)

    # Interrupted: 3 steps, checkpoint, fresh objects, resume 3 steps.
    m1, o1 = _model_and_opt()
    _train_steps(m1, o1, batch, 3)
    blob = checkpoint_bytes(m1, o1)
    m2, o2 = _model_and_opt(seed=4)
    restore_from_bytes(blob, m2, o2)
    _train_steps(m2, o2, batch, 3)

    for a, b in zip(m_ref.params(), m2.params()):
        assert np.array_equal(a.value, b.value)


def test_checkpoint_via_vfs_with_timing():
    vfs = VirtualFS(ParallelFileSystem(Engine(), TESTBOX.pfs, 1))
    model, opt = _model_and_opt()
    done = save_checkpoint(vfs, "ckpt/step3.bin", model, opt)
    assert done > 0
    model2, opt2 = _model_and_opt(seed=7)
    done2 = load_checkpoint(vfs, "ckpt/step3.bin", model2, opt2)
    assert done2 > 0
    assert np.array_equal(model.flat_grads() * 0 + 1, model2.flat_grads() * 0 + 1)
    for a, b in zip(model.params(), model2.params()):
        assert np.array_equal(a.value, b.value)


def test_checkpoint_validation_errors():
    model, opt = _model_and_opt()
    blob = checkpoint_bytes(model, opt)
    with pytest.raises(ValueError, match="magic"):
        restore_from_bytes(b"XXXX" + blob[4:], model, opt)
    other = HydraGNN(
        HydraGNNConfig(feature_dim=1, head_dims=(1,), hidden_dim=12, n_conv_layers=1)
    )
    with pytest.raises(ValueError, match="shape mismatch"):
        restore_from_bytes(blob, other)
    weights_only = checkpoint_bytes(model)  # no optimiser
    with pytest.raises(ValueError, match="no optimiser"):
        restore_from_bytes(weights_only, model, opt)
