"""Regression tests for the fetch-accounting and resilience-gap fixes.

Each test here fails against the pre-fix code:

* zero-size remote samples used to be counted in neither ``n_local`` nor
  ``n_remote`` (they were filtered out of the plan and forgotten),
* ``get_samples`` used to *assign* the cache's cumulative counters into
  ``FetchStats`` instead of accumulating deltas, so a ``stats`` reset
  silently resurrected the old totals on the next fetch,
* the reshard bulk path used to call ``transport.fetch`` directly —
  bypassing the retry/failover ladder and never checking
  ``outcome.timed_out``, stitching ``None`` payloads into the new chunk.
"""

import numpy as np

from repro.core import (
    DataPlaneOptions,
    DDStore,
    FetchStats,
    GeneratorSource,
    PreloadResult,
    ResilienceOptions,
)
from repro.dataplane import FetchOutcome, FetchTimeoutError
from repro.graphs import IsingGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world

N = 32  # 4 ranks x 8 samples in the default TESTBOX world


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def _source(ctx, n=N):
    return GeneratorSource(IsingGenerator(n), ctx.world.machine)


class ZeroMixSource:
    """Packed samples where every third one is zero bytes long."""

    def __init__(self, n=N):
        self.n_samples = n
        self.sizes = [0 if i % 3 == 0 else 64 for i in range(n)]

    def payload(self, i):
        return np.full(self.sizes[i], i % 251, dtype=np.uint8)

    def load_chunk(self, indices, node_index, engine):
        blobs = [self.payload(int(i)) for i in indices]
        yield engine.timeout(1e-6)
        sizes = np.fromiter((b.size for b in blobs), dtype=np.int64, count=len(blobs))
        buffer = np.concatenate(blobs) if blobs else np.zeros(0, dtype=np.uint8)
        return PreloadResult(buffer=buffer, sizes=sizes)


class FlakyOnce:
    """Delegating transport wrapper whose FIRST fetch times out every read."""

    def __init__(self, inner, engine):
        self._inner = inner
        self._engine = engine
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def fetch(self, reads, n_streams=1, timeout_s=None):
        self.calls += 1
        if self.calls == 1:
            return self._fail(reads)
        if timeout_s is None:
            return self._inner.fetch(reads, n_streams=n_streams)
        return self._inner.fetch(reads, n_streams=n_streams, timeout_s=timeout_s)

    def _fail(self, reads):
        yield self._engine.timeout(1e-6)
        n = len(reads)
        return FetchOutcome(
            payloads=[None] * n,
            latencies=np.zeros(n, dtype=np.float64),
            stage_seconds={},
            timed_out=np.ones(n, dtype=bool),
        )


# ---------------------------------------------------------------------------
# zero-size samples must be accounted
# ---------------------------------------------------------------------------

def test_zero_size_remote_samples_counted_in_n_remote():
    src = ZeroMixSource()

    def main(ctx):
        store = yield from DDStore.create(ctx.comm, ZeroMixSource())
        blobs = yield from store.get_samples(range(N), decode="raw")
        s = store.stats
        return ([int(b.size) for b in blobs], s.n_local, s.n_remote)

    job = run(main)
    for sizes, n_local, n_remote in job.results:
        assert sizes == src.sizes  # zero-size payloads come back empty, in order
        assert n_local == 8  # this rank's own chunk
        # Every non-local id is remote-served, including the zero-byte ones
        # (pre-fix they were dropped from the plan and never counted).
        assert n_remote == N - 8
        assert n_local + n_remote == N


def test_zero_size_payload_contents_roundtrip():
    src = ZeroMixSource()

    def main(ctx):
        store = yield from DDStore.create(ctx.comm, ZeroMixSource())
        blobs = yield from store.get_samples(range(N), decode="raw")
        return [bytes(b.tobytes()) for b in blobs]

    job = run(main)
    expected = [src.payload(i).tobytes() for i in range(N)]
    for blobs in job.results:
        assert blobs == expected


# ---------------------------------------------------------------------------
# cache counters must accumulate deltas, not mirror cumulative totals
# ---------------------------------------------------------------------------

def test_stats_reset_does_not_resurrect_cache_counters():
    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _source(ctx),
            dataplane=DataPlaneOptions(cache_bytes=1 << 20),
        )
        lo, hi = store.local_range
        remote = [(hi + 1) % N, (hi + 2) % N]
        yield from store.get_samples(remote)  # cold: 2 misses + inserts
        yield from store.get_samples(remote)  # warm: 2 hits
        before = store.stats.n_cache_hits
        store.stats = FetchStats()  # a fresh measurement window
        yield from store.get_samples(range(lo, hi))  # local-only traffic
        return (before, store.stats.n_cache_hits, store.stats.n_cache_misses)

    job = run(main)
    for before, hits_after, misses_after in job.results:
        assert before == 2
        # Pre-fix: ``stats.n_cache_hits = cache.stats.hits`` re-imported the
        # cumulative total (2) into the freshly reset window.
        assert hits_after == 0
        assert misses_after == 0


def test_cache_counters_accumulate_across_windows():
    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _source(ctx),
            dataplane=DataPlaneOptions(cache_bytes=1 << 20),
        )
        hi = store.local_range[1]
        remote = [(hi + 1) % N]
        yield from store.get_samples(remote)
        yield from store.get_samples(remote)
        yield from store.get_samples(remote)
        return (store.stats.n_cache_hits, store.stats.n_cache_misses)

    job = run(main)
    for hits, misses in job.results:
        assert (hits, misses) == (2, 1)


# ---------------------------------------------------------------------------
# reshard bulk path must ride the retry/failover ladder
# ---------------------------------------------------------------------------

def test_reshard_bulk_path_retries_timed_out_reads():
    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _source(ctx),
            resilience=ResilienceOptions(
                timeout_s=1e-3, max_retries=2, backoff_s=1e-5, failover=False
            ),
        )
        expected = yield from store.get_samples(range(N), decode="raw")
        baseline_retries = store.stats.n_retries
        store.transport = FlakyOnce(store.transport, ctx.comm.engine)
        new = yield from store.reshard(width=2, close_old=False)
        got = yield from new.get_samples(range(N), decode="raw")
        ok = all(np.array_equal(a, b) for a, b in zip(expected, got))
        return (
            ok,
            store.stats.n_timeouts,
            store.stats.n_retries - baseline_retries,
        )

    job = run(main)
    for ok, n_timeouts, n_retries in job.results:
        # Pre-fix the bulk path called transport.fetch directly: the timed-out
        # batch's None payloads were concatenated into the new chunk.
        assert ok
        assert n_timeouts > 0
        assert n_retries > 0


def test_reshard_bulk_path_raises_when_resilience_disabled():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        store.transport = FlakyOnce(store.transport, ctx.comm.engine)
        try:
            yield from store.reshard(width=2, close_old=False)
        except FetchTimeoutError:
            return "raised"
        return "silently accepted timed-out reads"

    job = run(main)
    # Pre-fix: ``outcome.timed_out`` was never checked and the reshard
    # crashed later (or corrupted the new chunk) instead of failing loudly.
    assert all(r == "raised" for r in job.results)
