"""Tests for the NVMe staging tier and DDStore elastic re-sharding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DDStore, GeneratorSource
from repro.graphs import IsingGenerator, MoleculeGenerator
from repro.hardware import NVMeDevice, TEST_NVME, TESTBOX
from repro.hardware.nvme import NVMeSpec
from repro.mpi import run_world
from repro.sim import Engine
from repro.storage import CFFReader, CFFWriter, NVMeStagedReader, stage_to_nvme


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


# ---------------------------------------------------------------------------
# NVMe device
# ---------------------------------------------------------------------------

def test_nvme_capacity_accounting():
    dev = NVMeDevice(Engine(), TEST_NVME)
    dev.allocate(TEST_NVME.capacity_bytes // 2)
    assert dev.free_bytes == TEST_NVME.capacity_bytes - TEST_NVME.capacity_bytes // 2
    with pytest.raises(OSError, match="NVMe full"):
        dev.allocate(TEST_NVME.capacity_bytes)
    dev.release(TEST_NVME.capacity_bytes // 2)
    assert dev.used_bytes == 0


def test_nvme_read_latency_reasonable():
    dev = NVMeDevice(Engine(), TEST_NVME)
    done = dev.read(4096, arrival=0.0)
    # flash latency + IOPS service, well under a PFS metadata op
    assert 1e-5 < done < 1e-3


def test_nvme_queueing_under_load():
    dev = NVMeDevice(Engine(), TEST_NVME)
    finishes = [dev.read(4096, arrival=0.0) for _ in range(100)]
    assert finishes[-1] > finishes[0]  # FIFO backlog builds


def test_nvme_write_streams_at_bandwidth():
    dev = NVMeDevice(Engine(), TEST_NVME)
    t = dev.write(TEST_NVME.write_bandwidth_Bps, arrival=0.0)  # 1 second of data
    assert t == pytest.approx(1.0, rel=0.01)


def test_nvme_rejects_negative():
    dev = NVMeDevice(Engine(), TEST_NVME)
    with pytest.raises(ValueError):
        dev.read(-1, 0.0)
    with pytest.raises(ValueError):
        dev.write(-1, 0.0)
    with pytest.raises(ValueError):
        dev.allocate(-1)


# ---------------------------------------------------------------------------
# staging
# ---------------------------------------------------------------------------

def test_stage_to_nvme_roundtrip():
    gen = IsingGenerator(12, seed=0)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            return None
        cff = CFFReader(vfs, "c", ctx.world.machine)
        dev = NVMeDevice(ctx.engine, TEST_NVME)
        staged, t_done = stage_to_nvme(cff, dev, ctx.node_index, ctx.now)
        assert t_done > ctx.now
        g, done = staged.read_sample(7, ctx.node_index, t_done)
        return g, staged.n_samples, dev.used_bytes

    g, n, used = run(main).results[0]
    assert g.allclose(gen.make(7))
    assert n == 12
    assert used > 0


def test_stage_respects_logical_capacity():
    gen = IsingGenerator(4, seed=0)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=1)
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            return None
        cff = CFFReader(vfs, "c", ctx.world.machine)
        dev = NVMeDevice(ctx.engine, TEST_NVME)
        try:
            stage_to_nvme(cff, dev, 0, ctx.now, logical_bytes=TEST_NVME.capacity_bytes * 2)
        except OSError:
            return "full"
        return "fit"

    assert run(main).results[0] == "full"


def test_staged_reader_stats_mode():
    gen = MoleculeGenerator(6, seed=1)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            return None
        cff = CFFReader(vfs, "c", ctx.world.machine)
        dev = NVMeDevice(ctx.engine, TEST_NVME)
        staged, t = stage_to_nvme(cff, dev, 0, ctx.now)
        stats, done = staged.read_sample_stats(3, 0, t)
        return stats, staged.sample_nbytes(3)

    stats, nbytes = run(main).results[0]
    g = gen.make(3)
    assert (stats.n_nodes, stats.n_edges) == (g.n_nodes, g.n_edges)
    assert stats.nbytes == nbytes


# ---------------------------------------------------------------------------
# resharding
# ---------------------------------------------------------------------------

def _src(ctx, n=24):
    return GeneratorSource(IsingGenerator(n, seed=3), ctx.world.machine)


def test_reshard_changes_width_and_preserves_data():
    gen = IsingGenerator(24, seed=3)

    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))  # width=4
        new = yield from store.reshard(width=2)
        graphs = yield from new.get_samples([23, 0, 11])
        return (new.width, new.n_replicas, [g.sample_id for g in graphs], graphs[0])

    job = run(main)
    for width, replicas, ids, g in job.results:
        assert (width, replicas) == (2, 2)
        assert ids == [23, 0, 11]
        assert g.allclose(gen.make(23))


def test_reshard_releases_old_memory():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        node = ctx.world.cluster.nodes[ctx.node_index]
        before = node.mem_used_bytes
        new = yield from store.reshard(width=2)
        yield from ctx.comm.barrier()
        after = node.mem_used_bytes
        # Old chunk released, new (larger, replicated) chunk charged.
        return before, after, new.memory_bytes

    job = run(main)
    for before, after, new_bytes in job.results:
        assert after > 0
        assert new_bytes > 0


def test_reshard_to_same_width_is_identity_on_data():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        new = yield from store.reshard(width=store.width)
        a = yield from new.get_samples(range(24))
        return [g.sample_id for g in a]

    job = run(main)
    assert job.results[0] == list(range(24))


def test_reshard_takes_virtual_time_but_less_than_fs_reload():
    # Memory-to-memory redistribution must cost something, but far less
    # than re-reading the dataset from the PFS.
    def main(ctx):
        from repro.core import ReaderSource
        from repro.storage import CFFWriter as W, CFFReader as R

        vfs = ctx.world.vfs
        gen = IsingGenerator(24, seed=3)
        if ctx.rank == 0:
            W.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        reader = R(vfs, "c", ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, ReaderSource(reader))
        t0 = ctx.now
        new = yield from store.reshard(width=2)
        reshard_time = ctx.now - t0
        ctx.world.pfs.drop_caches()  # a fresh job would find cold caches
        t0 = ctx.now
        again = yield from DDStore.create(ctx.comm, ReaderSource(reader), width=2)
        fs_time = ctx.now - t0
        return reshard_time, fs_time

    job = run(main)
    reshard_time, fs_time = job.results[0]
    assert 0 < reshard_time < fs_time


def test_reshard_n_workers_streams_bulk_reads():
    """Loader worker counts plumb through to the reshard bulk path: more
    wire streams make the memory-to-memory shuffle faster (never slower),
    and the redistributed data is identical."""
    gen = IsingGenerator(24, seed=3)

    def main(ctx, n_workers):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        t0 = ctx.now
        new = yield from store.reshard(width=2, n_workers=n_workers)
        dt = ctx.now - t0
        graphs = yield from new.get_samples([23, 0, 11])
        return dt, [g.sample_id for g in graphs], graphs[0]

    one = run(lambda c: main(c, 1))
    four = run(lambda c: main(c, 4))
    for (dt1, ids1, g1), (dt4, ids4, g4) in zip(one.results, four.results):
        assert ids1 == ids4 == [23, 0, 11]
        assert g1.allclose(gen.make(23)) and g4.allclose(gen.make(23))
        assert dt4 <= dt1
    # Streaming must actually help somewhere (the bulk spans are large).
    assert any(f[0] < o[0] for o, f in zip(one.results, four.results))


# ---------------------------------------------------------------------------
# reshard lifecycle: single-shot shutdown, stats continuity, generations
# ---------------------------------------------------------------------------

def test_shutdown_is_single_shot():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        yield from store.shutdown()
        yield from store.shutdown()  # second call: no collective, no error
        return store._shutdown_collectives, store.closed

    job = run(main)
    assert all(r == (1, True) for r in job.results)


def test_reshard_teardown_is_exactly_one_collective():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        new = yield from store.reshard(width=2)
        after_reshard = store._shutdown_collectives
        yield from store.shutdown()  # a stray late shutdown must be a no-op
        got = yield from new.get_samples([5], decode=False)
        yield from new.shutdown()
        return after_reshard, store._shutdown_collectives, store.closed, len(got)

    job = run(main)
    for before, after, closed, n in job.results:
        assert before == after == 1
        assert closed and n == 1


def test_reshard_close_old_false_keeps_old_generation_alive():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        new = yield from store.reshard(width=2, close_old=False)
        old = yield from store.get_samples([3], decode="raw")
        fresh = yield from new.get_samples([3], decode="raw")
        identical = bytes(old[0].tobytes()) == bytes(fresh[0].tobytes())
        yield from store.shutdown()
        yield from new.shutdown()
        return store._shutdown_collectives, identical

    job = run(main)
    assert all(r == (1, True) for r in job.results)


def test_reshard_carries_stats_and_generation():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        yield from store.get_samples(range(12), decode=False)
        carried = store.stats.n_total
        new = yield from store.reshard(width=2)
        after_reshard = new.stats.n_total
        yield from new.get_samples(range(12, 24), decode=False)
        later = new.stats.n_total
        newer = yield from new.reshard(width=1, carry_stats=False)
        return (
            store.generation,
            new.generation,
            newer.generation,
            carried,
            after_reshard,
            later,
            newer.stats.n_total,
        )

    job = run(main)
    for g0, g1, g2, carried, after, later, fresh in job.results:
        assert (g0, g1, g2) == (0, 1, 2)
        assert carried > 0
        assert after >= carried  # old generation's totals folded in
        assert later > after  # and the counters keep climbing, never reset
        assert fresh < carried  # carry_stats=False starts from scratch


def test_reshard_metric_series_tagged_with_generation():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        yield from store.get_samples(range(8), decode=False)
        new = yield from store.reshard(width=2)
        yield from new.get_samples(range(8, 16), decode=False)
        yield from new.shutdown()
        return new.generation

    from repro.mpi.comm import World
    from repro.obs import Observer

    world = World(TESTBOX, 2, seed=0)
    world.attach_observer(Observer(trace=False))
    job = run_world(TESTBOX, 2, main, seed=0, world=world)
    assert all(g == 1 for g in job.results)
    per_gen = world.obs.metrics.sum_by("ddstore.fetch", "generation", "counter")
    gens = {g for g, _counter in per_gen}
    assert gens == {0, 1}  # one series per generation, not one merged blur
    # Sample counts land under the generation that actually served them.
    for gen in (0, 1):
        served = sum(
            v
            for (g, counter), v in per_gen.items()
            if g == gen and counter in ("n_local", "n_remote", "n_cache_hits")
        )
        assert served > 0


# ---------------------------------------------------------------------------
# redistribution byte-identity: bulk spans vs per-sample fallback
# ---------------------------------------------------------------------------

class _BlobSource:
    """Raw-bytes source with zero-size samples (degenerate span shapes)."""

    def __init__(self, blobs):
        self.blobs = list(blobs)
        self.n_samples = len(self.blobs)

    def load_chunk(self, indices, node_index, engine):
        from repro.core.preloader import PreloadResult

        yield engine.timeout(1e-6)
        bs = [self.blobs[int(i)] for i in indices]
        sizes = np.fromiter((len(b) for b in bs), dtype=np.int64, count=len(bs))
        joined = b"".join(bs)
        buf = (
            np.frombuffer(joined, dtype=np.uint8).copy()
            if joined
            else np.zeros(0, np.uint8)
        )
        return PreloadResult(buffer=buf, sizes=sizes)


def _blobs_from_sizes(sizes):
    return [bytes((i * 7 + j) % 256 for j in range(s)) for i, s in enumerate(sizes)]


def _reshard_blobs(sizes, framework):
    """Reshard a _BlobSource store 4 -> 2 and read everything back raw."""
    from repro.core import DataPlaneOptions

    blobs = _blobs_from_sizes(sizes)

    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _BlobSource(blobs),
            width=4,
            dataplane=DataPlaneOptions(framework=framework),
        )
        new = yield from store.reshard(width=2)
        got = yield from new.get_samples(range(len(blobs)), decode="raw")
        yield from new.shutdown()
        return [bytes(g.tobytes()) for g in got]

    job = run(main)
    return blobs, job.results


@pytest.mark.parametrize("framework", ["mpi-rma", "p2p"])
def test_reshard_paths_byte_identical_with_zero_size_samples(framework):
    # mpi-rma redistributes via one bulk span per overlapped owner;
    # p2p cannot serve arbitrary byte spans and takes the per-sample
    # fallback.  Both must reproduce every blob exactly — including the
    # zero-size samples whose spans collapse to nothing.
    sizes = [5, 0, 3, 0, 0, 7, 1, 0, 9, 2, 0, 4, 6, 0, 8, 3]
    blobs, results = _reshard_blobs(sizes, framework)
    for got in results:
        assert got == blobs


@settings(max_examples=6, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=12), min_size=8, max_size=24)
)
def test_reshard_byte_identity_property(sizes):
    # Property over arbitrary size tables (runs on the bulk path; the
    # p2p fallback gets the same tables via the parametrized test above).
    blobs, results = _reshard_blobs(sizes, "mpi-rma")
    for got in results:
        assert got == blobs


# ---------------------------------------------------------------------------
# reshard under fault plans: the retry/failover ladder stays engaged
# ---------------------------------------------------------------------------

def _faulted_reshard(plan_name):
    from repro.core import ResilienceOptions
    from repro.faults import build_fault_plan, install_faults
    from repro.mpi.comm import World

    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _src(ctx),
            resilience=ResilienceOptions(
                timeout_s=1.5e-4, max_retries=2, backoff_s=1e-5
            ),
        )
        yield from store.get_samples(range(8), decode=False)
        new = yield from store.reshard(width=2)
        graphs = yield from new.get_samples(range(24))
        stats = new.stats  # carries the old generation's fault counters
        yield from new.shutdown()
        return graphs, stats.n_timeouts, stats.n_retries, stats.n_failovers

    world = World(TESTBOX, 2, seed=0)
    install_faults(world, build_fault_plan(plan_name, 4, seed=0))
    return run_world(TESTBOX, 2, main, seed=0, world=world)


@pytest.mark.parametrize("plan", ["straggler-10x", "blackout"])
def test_reshard_under_fault_plan_returns_identical_bytes(plan):
    gen = IsingGenerator(24, seed=3)
    job = _faulted_reshard(plan)
    for graphs, _t, _r, _f in job.results:
        assert [g.sample_id for g in graphs] == list(range(24))
        for g in graphs:
            assert g.allclose(gen.make(g.sample_id))


def test_reshard_under_straggler_engages_retry_ladder():
    # Faults change timing and engage the ladder; bytes stay correct
    # (asserted above).  The final permitted attempt runs unbounded, so
    # a slow peer degrades the reshard instead of failing it.
    job = _faulted_reshard("straggler-10x")
    timeouts = sum(t for _g, t, _r, _f in job.results)
    retries = sum(r for _g, _t, r, _f in job.results)
    assert timeouts > 0 and retries > 0
