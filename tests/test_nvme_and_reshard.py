"""Tests for the NVMe staging tier and DDStore elastic re-sharding."""

import numpy as np
import pytest

from repro.core import DDStore, GeneratorSource
from repro.graphs import IsingGenerator, MoleculeGenerator
from repro.hardware import NVMeDevice, TEST_NVME, TESTBOX
from repro.hardware.nvme import NVMeSpec
from repro.mpi import run_world
from repro.sim import Engine
from repro.storage import CFFReader, CFFWriter, NVMeStagedReader, stage_to_nvme


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


# ---------------------------------------------------------------------------
# NVMe device
# ---------------------------------------------------------------------------

def test_nvme_capacity_accounting():
    dev = NVMeDevice(Engine(), TEST_NVME)
    dev.allocate(TEST_NVME.capacity_bytes // 2)
    assert dev.free_bytes == TEST_NVME.capacity_bytes - TEST_NVME.capacity_bytes // 2
    with pytest.raises(OSError, match="NVMe full"):
        dev.allocate(TEST_NVME.capacity_bytes)
    dev.release(TEST_NVME.capacity_bytes // 2)
    assert dev.used_bytes == 0


def test_nvme_read_latency_reasonable():
    dev = NVMeDevice(Engine(), TEST_NVME)
    done = dev.read(4096, arrival=0.0)
    # flash latency + IOPS service, well under a PFS metadata op
    assert 1e-5 < done < 1e-3


def test_nvme_queueing_under_load():
    dev = NVMeDevice(Engine(), TEST_NVME)
    finishes = [dev.read(4096, arrival=0.0) for _ in range(100)]
    assert finishes[-1] > finishes[0]  # FIFO backlog builds


def test_nvme_write_streams_at_bandwidth():
    dev = NVMeDevice(Engine(), TEST_NVME)
    t = dev.write(TEST_NVME.write_bandwidth_Bps, arrival=0.0)  # 1 second of data
    assert t == pytest.approx(1.0, rel=0.01)


def test_nvme_rejects_negative():
    dev = NVMeDevice(Engine(), TEST_NVME)
    with pytest.raises(ValueError):
        dev.read(-1, 0.0)
    with pytest.raises(ValueError):
        dev.write(-1, 0.0)
    with pytest.raises(ValueError):
        dev.allocate(-1)


# ---------------------------------------------------------------------------
# staging
# ---------------------------------------------------------------------------

def test_stage_to_nvme_roundtrip():
    gen = IsingGenerator(12, seed=0)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            return None
        cff = CFFReader(vfs, "c", ctx.world.machine)
        dev = NVMeDevice(ctx.engine, TEST_NVME)
        staged, t_done = stage_to_nvme(cff, dev, ctx.node_index, ctx.now)
        assert t_done > ctx.now
        g, done = staged.read_sample(7, ctx.node_index, t_done)
        return g, staged.n_samples, dev.used_bytes

    g, n, used = run(main).results[0]
    assert g.allclose(gen.make(7))
    assert n == 12
    assert used > 0


def test_stage_respects_logical_capacity():
    gen = IsingGenerator(4, seed=0)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=1)
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            return None
        cff = CFFReader(vfs, "c", ctx.world.machine)
        dev = NVMeDevice(ctx.engine, TEST_NVME)
        try:
            stage_to_nvme(cff, dev, 0, ctx.now, logical_bytes=TEST_NVME.capacity_bytes * 2)
        except OSError:
            return "full"
        return "fit"

    assert run(main).results[0] == "full"


def test_staged_reader_stats_mode():
    gen = MoleculeGenerator(6, seed=1)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        if ctx.rank != 0:
            return None
        cff = CFFReader(vfs, "c", ctx.world.machine)
        dev = NVMeDevice(ctx.engine, TEST_NVME)
        staged, t = stage_to_nvme(cff, dev, 0, ctx.now)
        stats, done = staged.read_sample_stats(3, 0, t)
        return stats, staged.sample_nbytes(3)

    stats, nbytes = run(main).results[0]
    g = gen.make(3)
    assert (stats.n_nodes, stats.n_edges) == (g.n_nodes, g.n_edges)
    assert stats.nbytes == nbytes


# ---------------------------------------------------------------------------
# resharding
# ---------------------------------------------------------------------------

def _src(ctx, n=24):
    return GeneratorSource(IsingGenerator(n, seed=3), ctx.world.machine)


def test_reshard_changes_width_and_preserves_data():
    gen = IsingGenerator(24, seed=3)

    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))  # width=4
        new = yield from store.reshard(width=2)
        graphs = yield from new.get_samples([23, 0, 11])
        return (new.width, new.n_replicas, [g.sample_id for g in graphs], graphs[0])

    job = run(main)
    for width, replicas, ids, g in job.results:
        assert (width, replicas) == (2, 2)
        assert ids == [23, 0, 11]
        assert g.allclose(gen.make(23))


def test_reshard_releases_old_memory():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        node = ctx.world.cluster.nodes[ctx.node_index]
        before = node.mem_used_bytes
        new = yield from store.reshard(width=2)
        yield from ctx.comm.barrier()
        after = node.mem_used_bytes
        # Old chunk released, new (larger, replicated) chunk charged.
        return before, after, new.memory_bytes

    job = run(main)
    for before, after, new_bytes in job.results:
        assert after > 0
        assert new_bytes > 0


def test_reshard_to_same_width_is_identity_on_data():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        new = yield from store.reshard(width=store.width)
        a = yield from new.get_samples(range(24))
        return [g.sample_id for g in a]

    job = run(main)
    assert job.results[0] == list(range(24))


def test_reshard_takes_virtual_time_but_less_than_fs_reload():
    # Memory-to-memory redistribution must cost something, but far less
    # than re-reading the dataset from the PFS.
    def main(ctx):
        from repro.core import ReaderSource
        from repro.storage import CFFWriter as W, CFFReader as R

        vfs = ctx.world.vfs
        gen = IsingGenerator(24, seed=3)
        if ctx.rank == 0:
            W.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        reader = R(vfs, "c", ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, ReaderSource(reader))
        t0 = ctx.now
        new = yield from store.reshard(width=2)
        reshard_time = ctx.now - t0
        ctx.world.pfs.drop_caches()  # a fresh job would find cold caches
        t0 = ctx.now
        again = yield from DDStore.create(ctx.comm, ReaderSource(reader), width=2)
        fs_time = ctx.now - t0
        return reshard_time, fs_time

    job = run(main)
    reshard_time, fs_time = job.results[0]
    assert 0 < reshard_time < fs_time


def test_reshard_n_workers_streams_bulk_reads():
    """Loader worker counts plumb through to the reshard bulk path: more
    wire streams make the memory-to-memory shuffle faster (never slower),
    and the redistributed data is identical."""
    gen = IsingGenerator(24, seed=3)

    def main(ctx, n_workers):
        store = yield from DDStore.create(ctx.comm, _src(ctx))
        t0 = ctx.now
        new = yield from store.reshard(width=2, n_workers=n_workers)
        dt = ctx.now - t0
        graphs = yield from new.get_samples([23, 0, 11])
        return dt, [g.sample_id for g in graphs], graphs[0]

    one = run(lambda c: main(c, 1))
    four = run(lambda c: main(c, 4))
    for (dt1, ids1, g1), (dt4, ids4, g4) in zip(one.results, four.results):
        assert ids1 == ids4 == [23, 0, 11]
        assert g1.allclose(gen.make(23)) and g4.allclose(gen.make(23))
        assert dt4 <= dt1
    # Streaming must actually help somewhere (the bulk spans are large).
    assert any(f[0] < o[0] for o, f in zip(one.results, four.results))
