"""End-to-end distributed training tests: DDP sync, trainer phases, convergence."""

import numpy as np
import pytest

from repro.core import DataLoader, DDStore, DDStoreDataset, GeneratorSource
from repro.gnn import (
    AdamW,
    DistributedModel,
    HydraGNN,
    HydraGNNConfig,
    Trainer,
)
from repro.graphs import IsingGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world


def _small_cfg():
    return HydraGNNConfig(feature_dim=1, head_dims=(1,), hidden_dim=12, n_conv_layers=2, n_fc_layers=2)


def _setup(ctx, n_samples=32, width=None, real=True, record=False, batch_size=4, seed=0):
    src = GeneratorSource(IsingGenerator(n_samples, seed=seed), ctx.world.machine)
    store = yield from DDStore.create(
        ctx.comm, src, width=width, record_latencies=record
    )
    model = HydraGNN(_small_cfg(), seed=7)
    dmodel = DistributedModel(model, ctx.comm)
    yield from dmodel.broadcast_parameters()
    loader = DataLoader(
        DDStoreDataset(store), ctx, batch_size=batch_size, shuffle="global", seed=seed
    )
    opt = AdamW(model.params(), lr=1e-3, weight_decay=0.0)
    trainer = Trainer(ctx, dmodel, loader, opt, real_compute=real)
    return trainer, dmodel


def test_ddp_gradients_identical_across_ranks():
    def main(ctx):
        trainer, dmodel = yield from _setup(ctx)
        yield from trainer.train_epoch(0)
        return dmodel.model.flat_grads()

    job = run_world(TESTBOX, 2, main)
    g0 = job.results[0]
    for g in job.results[1:]:
        assert np.allclose(g, g0)


def test_ddp_weights_stay_synchronised():
    def main(ctx):
        trainer, dmodel = yield from _setup(ctx)
        for epoch in range(2):
            yield from trainer.train_epoch(epoch)
        yield from dmodel.assert_synchronised()
        return float(np.abs(dmodel.model.flat_grads()).sum())

    job = run_world(TESTBOX, 2, main)
    assert len(job.results) == 4


def test_training_loss_decreases_distributed():
    def main(ctx):
        trainer, _ = yield from _setup(ctx, n_samples=64, batch_size=8)
        losses = []
        for epoch in range(8):
            report = yield from trainer.train_epoch(epoch)
            losses.append(report.train_loss)
        return losses

    job = run_world(TESTBOX, 2, main)
    losses = job.results[0]
    assert losses[-1] < losses[0]


def test_epoch_report_phase_accounting():
    def main(ctx):
        trainer, _ = yield from _setup(ctx, record=True)
        report = yield from trainer.train_epoch(0)
        return report

    job = run_world(TESTBOX, 2, main)
    r = job.results[0]
    assert r.n_steps == 2  # 32 / 4 ranks / batch 4
    assert r.n_samples == 8
    assert r.elapsed > 0
    for phase in ("cpu_loading", "cpu_batching", "gpu_forward", "gpu_backward", "gpu_comm", "optimizer"):
        assert r.phases.seconds[phase] > 0, phase
    assert r.sample_latencies.shape == (8,)
    assert r.throughput > 0


def test_modelled_mode_runs_without_numerics():
    def main(ctx):
        trainer, dmodel = yield from _setup(ctx, real=False, record=True)
        report = yield from trainer.train_epoch(0)
        # No numerical gradients in modelled mode.
        assert np.all(dmodel.model.flat_grads() == 0)
        return report

    job = run_world(TESTBOX, 2, main)
    r = job.results[0]
    assert r.train_loss is None
    assert r.phases.seconds["gpu_comm"] > 0


def test_modelled_and_real_have_similar_phase_times():
    def main(ctx, real):
        trainer, _ = yield from _setup(ctx, real=real)
        report = yield from trainer.train_epoch(0)
        return report.elapsed

    real = run_world(TESTBOX, 2, lambda c: main(c, True), seed=3).results[0]
    modelled = run_world(TESTBOX, 2, lambda c: main(c, False), seed=3).results[0]
    # Virtual time must not depend on whether numerics actually ran.
    assert modelled == pytest.approx(real, rel=0.05)


def test_evaluate_returns_finite_loss():
    def main(ctx):
        trainer, _ = yield from _setup(ctx)
        yield from trainer.train_epoch(0)
        val = yield from trainer.evaluate(np.arange(8))
        return val

    job = run_world(TESTBOX, 2, main)
    assert all(np.isfinite(v) for v in job.results)


def test_evaluate_requires_real_compute():
    def main(ctx):
        trainer, _ = yield from _setup(ctx, real=False)
        try:
            yield from trainer.evaluate(np.arange(4))
        except RuntimeError:
            return "raised"
        return "no"

    job = run_world(TESTBOX, 2, main)
    assert job.results == ["raised"] * 4


def test_width_replication_trains_identically():
    # Same data, same seeds: width=2 (two replicas) must produce the same
    # averaged gradients as width=4 (one replica) — replication is a
    # performance knob, not a semantics change.
    def main(ctx, width):
        trainer, dmodel = yield from _setup(ctx, width=width)
        yield from trainer.train_epoch(0)
        return dmodel.model.flat_grads()

    g_w4 = run_world(TESTBOX, 2, lambda c: main(c, None), seed=0).results[0]
    g_w2 = run_world(TESTBOX, 2, lambda c: main(c, 2), seed=0).results[0]
    assert np.allclose(g_w4, g_w2)


def test_mpi_stats_populated_by_training():
    def main(ctx):
        trainer, _ = yield from _setup(ctx)
        yield from trainer.train_epoch(0)
        return None

    job = run_world(TESTBOX, 2, main)
    merged = job.merged_stats()
    assert merged.count_by_call["MPI_Get"] > 0
    assert merged.count_by_call["MPI_Allreduce"] > 0
    assert merged.time_by_call["MPI_Get"] > 0
