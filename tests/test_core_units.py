"""Unit tests for DDStore building blocks: config, chunking, registry, samplers."""

import numpy as np
import pytest

from repro.core import (
    ChunkLayout,
    ChunkRegistry,
    DataPlaneOptions,
    DDStoreConfig,
    GlobalShuffleSampler,
    LocalShuffleSampler,
    balanced_partition,
    iter_batches,
)


# ---------------------------------------------------------------------------
# config
# ---------------------------------------------------------------------------

def test_config_default_width_is_single_replica():
    cfg = DDStoreConfig(n_ranks=64)
    assert cfg.effective_width == 64
    assert cfg.n_replicas == 1


def test_config_paper_example_1024_ranks_width_128():
    # Paper 3.1: N=1024, w=128 -> 8 groups of 128.
    cfg = DDStoreConfig(n_ranks=1024, width=128)
    assert cfg.n_replicas == 8
    assert cfg.group_of_rank(0) == 0
    assert cfg.group_of_rank(127) == 0
    assert cfg.group_of_rank(128) == 1
    assert cfg.group_of_rank(1023) == 7
    assert cfg.group_rank(129) == 1


def test_config_width_must_divide_ranks():
    with pytest.raises(ValueError, match="must divide"):
        DDStoreConfig(n_ranks=10, width=3)


def test_config_width_bounds():
    with pytest.raises(ValueError):
        DDStoreConfig(n_ranks=4, width=8)
    with pytest.raises(ValueError):
        DDStoreConfig(n_ranks=4, width=0)
    with pytest.raises(ValueError):
        DDStoreConfig(n_ranks=0)


def test_config_unknown_framework():
    with pytest.raises(ValueError, match="framework"):
        DDStoreConfig(n_ranks=4, dataplane=DataPlaneOptions(framework="smoke-signals"))


def test_config_rank_range_checks():
    cfg = DDStoreConfig(n_ranks=8, width=4)
    with pytest.raises(ValueError):
        cfg.group_of_rank(8)


# ---------------------------------------------------------------------------
# chunking
# ---------------------------------------------------------------------------

def test_balanced_partition_exact_division():
    b = balanced_partition(100, 4)
    assert np.array_equal(b, [0, 25, 50, 75, 100])


def test_balanced_partition_remainder_spreads():
    b = balanced_partition(10, 3)
    assert np.array_equal(b, [0, 4, 7, 10])
    sizes = np.diff(b)
    assert sizes.max() - sizes.min() <= 1


def test_balanced_partition_errors():
    with pytest.raises(ValueError):
        balanced_partition(-1, 2)
    with pytest.raises(ValueError):
        balanced_partition(10, 0)


def test_layout_owner_and_local_index():
    layout = ChunkLayout.build(10, 3)  # bounds [0,4,7,10]
    assert layout.owner_of(0) == 0
    assert layout.owner_of(3) == 0
    assert layout.owner_of(4) == 1
    assert layout.owner_of(9) == 2
    assert layout.local_index(5) == 1
    assert layout.chunk_range(1) == (4, 7)
    assert layout.chunk_size(2) == 3
    assert layout.max_chunk_size == 4


def test_layout_vectorised_owner():
    layout = ChunkLayout.build(10, 3)
    owners = layout.owner_of(np.array([0, 4, 9]))
    assert np.array_equal(owners, [0, 1, 2])


def test_layout_out_of_range():
    layout = ChunkLayout.build(10, 3)
    with pytest.raises(IndexError):
        layout.owner_of(10)
    with pytest.raises(IndexError):
        layout.owner_of(-1)
    with pytest.raises(IndexError):
        layout.chunk_range(3)


def test_layout_every_sample_owned_exactly_once():
    layout = ChunkLayout.build(1013, 7)  # awkward prime size
    seen = []
    for r in range(7):
        lo, hi = layout.chunk_range(r)
        seen.extend(range(lo, hi))
    assert seen == list(range(1013))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def _registry():
    layout = ChunkLayout.build(7, 2)  # chunks: [0,4), [4,7)
    sizes = [np.array([10, 20, 30, 40]), np.array([5, 6, 7])]
    return ChunkRegistry.from_sample_sizes(layout, sizes)


def test_registry_locate_single():
    reg = _registry()
    assert reg.locate(0) == (0, 0, 10)
    assert reg.locate(2) == (0, 30, 30)
    assert reg.locate(4) == (1, 0, 5)
    assert reg.locate(6) == (1, 11, 7)


def test_registry_locate_batch_matches_scalar():
    reg = _registry()
    owners, offs, sizes = reg.locate_batch(np.arange(7))
    for g in range(7):
        assert (int(owners[g]), int(offs[g]), int(sizes[g])) == reg.locate(g)


def test_registry_buffer_bytes():
    reg = _registry()
    assert reg.buffer_bytes(0) == 100
    assert reg.buffer_bytes(1) == 18
    assert reg.total_bytes == 118


def test_registry_size_table_validation():
    layout = ChunkLayout.build(7, 2)
    with pytest.raises(ValueError, match="sample sizes"):
        ChunkRegistry.from_sample_sizes(layout, [np.array([1, 2]), np.array([3, 4, 5])])
    with pytest.raises(ValueError, match="one offset table"):
        ChunkRegistry(layout=layout, offsets=[np.array([0, 1, 2, 3, 4])])


# ---------------------------------------------------------------------------
# samplers
# ---------------------------------------------------------------------------

def test_global_shuffle_partitions_whole_dataset():
    n, ranks = 100, 4
    all_ids = np.concatenate(
        [GlobalShuffleSampler(n, ranks, r, seed=1).epoch_indices(0) for r in range(ranks)]
    )
    assert sorted(all_ids.tolist()) == list(range(100))


def test_global_shuffle_changes_across_epochs():
    s = GlobalShuffleSampler(100, 4, 0, seed=1)
    e0, e1 = s.epoch_indices(0), s.epoch_indices(1)
    assert not np.array_equal(e0, e1)
    assert np.array_equal(e0, GlobalShuffleSampler(100, 4, 0, seed=1).epoch_indices(0))


def test_global_shuffle_rank_sees_fresh_data_each_epoch():
    # With global shuffling a rank's epoch sets differ — the generality
    # motivation of the paper.
    s = GlobalShuffleSampler(1000, 8, 3, seed=0)
    overlap = np.intersect1d(s.epoch_indices(0), s.epoch_indices(1)).size
    assert overlap < s.per_rank * 0.5


def test_global_shuffle_tail_dropped():
    s = GlobalShuffleSampler(103, 4, 0)
    assert s.per_rank == 25
    assert s.epoch_indices(0).size == 25


def test_local_shuffle_stays_in_shard():
    s = LocalShuffleSampler(100, 4, 2, seed=0)
    lo, hi = s.shard_range
    idx = s.epoch_indices(5)
    assert idx.min() >= lo and idx.max() < hi


def test_local_shuffle_same_shard_every_epoch():
    s = LocalShuffleSampler(100, 4, 1, seed=0)
    assert set(s.epoch_indices(0).tolist()) == set(s.epoch_indices(7).tolist())


def test_sampler_rank_validation():
    with pytest.raises(ValueError):
        GlobalShuffleSampler(10, 2, 2)
    with pytest.raises(ValueError):
        LocalShuffleSampler(10, 2, -1)
    with pytest.raises(ValueError):
        GlobalShuffleSampler(1, 2, 0)


def test_iter_batches_drop_last():
    idx = np.arange(10)
    batches = list(iter_batches(idx, 3))
    assert [b.tolist() for b in batches] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
    batches = list(iter_batches(idx, 3, drop_last=False))
    assert batches[-1].tolist() == [9]
    with pytest.raises(ValueError):
        list(iter_batches(idx, 0))
