"""Tests for the benchmark harness: metrics, reporting, experiment runs."""

import os

import numpy as np
import pytest

from repro.bench import (
    ExperimentConfig,
    cdf,
    geomean,
    latency_percentiles,
    packed_blobs,
    percentile,
    render_table,
    run_experiment,
    speedup_table,
    write_report,
)
from repro.bench.harness import METHODS, clear_blob_cache
from repro.bench.metrics import fmt_ms, fmt_seconds


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

def test_percentile_and_table2_summary():
    values = np.arange(1, 101, dtype=float)
    assert percentile(values, 50) == pytest.approx(50.5)
    pcts = latency_percentiles(values)
    assert set(pcts) == {50, 95, 99}
    assert pcts[99] > pcts[95] > pcts[50]
    with pytest.raises(ValueError):
        percentile(np.array([]), 50)


def test_cdf_monotone_and_thinned():
    rng = np.random.default_rng(0)
    values = rng.exponential(size=1000)
    xs, fs = cdf(values)
    assert np.all(np.diff(xs) >= 0)
    assert fs[-1] == pytest.approx(1.0)
    xs2, fs2 = cdf(values, n_points=50)
    assert xs2.size == 50
    with pytest.raises(ValueError):
        cdf(np.array([]))


def test_geomean():
    assert geomean([1, 4, 16]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([1, -1])
    with pytest.raises(ValueError):
        geomean([])


def test_speedup_table_normalises_to_baseline():
    out = speedup_table({"pff": 10.0, "ddstore": 45.0}, "pff")
    assert out == {"pff": 1.0, "ddstore": 4.5}
    with pytest.raises(KeyError):
        speedup_table({"a": 1.0}, "pff")
    with pytest.raises(ValueError):
        speedup_table({"pff": 0.0}, "pff")


def test_formatters():
    assert fmt_ms(0.00125) == "1.25 ms"
    assert fmt_seconds(2.5) == "2.50 s"
    assert fmt_seconds(0.0025) == "2.50 ms"
    assert fmt_seconds(2.5e-6) == "2.5 us"


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def test_render_table_alignment():
    text = render_table(["A", "B"], [["x", 1.0], ["yy", 123456.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "x" in text and "123,456" in text


def test_write_report_creates_files(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = write_report("unit", "hello table", data={"x": np.arange(3)})
    assert os.path.exists(path)
    assert os.path.exists(str(tmp_path / "unit.json"))
    assert "hello table" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError, match="method"):
        ExperimentConfig(method="zeromq")
    with pytest.raises(ValueError, match="dataset"):
        ExperimentConfig(dataset="imagenet")
    with pytest.raises(ValueError):
        ExperimentConfig(batch_size=0)
    cfg = ExperimentConfig(machine="perlmutter", n_nodes=2, batch_size=4, steps_per_epoch=3)
    assert cfg.n_ranks == 8
    assert cfg.resolved_samples() == 8 * 4 * 3
    assert cfg.with_method("pff").method == "pff"
    assert set(METHODS) == {"pff", "cff", "ddstore", "ddstore-p2p", "nvme"}


def test_packed_blobs_cached_and_deterministic():
    clear_blob_cache()
    a = packed_blobs("ising", 0, 4)
    b = packed_blobs("ising", 0, 8)
    assert b[:4] == a  # prefix stability: growing the cache keeps old blobs
    c = packed_blobs("ising", 0, 8)
    assert c == b


@pytest.mark.parametrize("method", ["pff", "cff", "ddstore"])
def test_run_experiment_tiny(method):
    cfg = ExperimentConfig(
        machine="perlmutter",
        n_nodes=1,
        dataset="ising",
        method=method,
        batch_size=4,
        steps_per_epoch=2,
    )
    r = run_experiment(cfg)
    assert r.total_samples == 4 * 4 * 2  # ranks * batch * steps
    assert r.elapsed > 0
    assert r.throughput > 0
    assert r.latencies.shape == (32,)
    assert np.all(r.latencies > 0)
    assert r.phases.seconds["cpu_loading"] > 0
    assert r.phases.seconds["gpu_comm"] > 0
    if method == "ddstore":
        assert r.preload_time > 0
        assert r.mpi_stats.count_by_call["MPI_Get"] > 0


def test_run_experiment_shape_ddstore_beats_pff():
    def thr(method):
        return run_experiment(
            ExperimentConfig(
                machine="perlmutter",
                n_nodes=2,
                dataset="aisd",
                method=method,
                batch_size=8,
                steps_per_epoch=2,
            )
        ).throughput

    assert thr("ddstore") > 1.3 * thr("pff")  # the headline result, in miniature


def test_run_experiment_width_parameter():
    cfg = ExperimentConfig(
        machine="perlmutter",
        n_nodes=2,
        dataset="ising",
        method="ddstore",
        width=4,
        batch_size=4,
        steps_per_epoch=1,
    )
    r = run_experiment(cfg)
    assert r.throughput > 0


def test_run_experiment_p2p_ablation_slower():
    def elapsed(method):
        return run_experiment(
            ExperimentConfig(
                machine="perlmutter",
                n_nodes=2,
                dataset="ising",
                method=method,
                batch_size=8,
                steps_per_epoch=2,
            )
        ).elapsed

    assert elapsed("ddstore-p2p") > elapsed("ddstore")


def test_experiment_deterministic():
    cfg = ExperimentConfig(
        machine="perlmutter", n_nodes=1, dataset="ising", method="ddstore",
        batch_size=4, steps_per_epoch=1,
    )
    a, b = run_experiment(cfg), run_experiment(cfg)
    assert a.elapsed == b.elapsed
    assert np.array_equal(a.latencies, b.latencies)


def test_columnar_cell_decode_budget():
    """The columnar byte path retires the decode stage entirely.

    A columnar run must charge zero "decode" seconds, a positive (but
    small) "scatter" charge, and make zero per-sample ndarray
    allocations; the scatter charge must come in well under what the
    decode model would have priced the same samples at.
    """
    from repro.graphs import SAMPLE_ALLOCATIONS
    from repro.hardware import get_machine
    from repro.storage import decode_time

    cfg = ExperimentConfig(
        machine="perlmutter",
        n_nodes=1,
        dataset="ising",
        method="ddstore",
        batch_size=4,
        steps_per_epoch=2,
        columnar=True,
    )
    SAMPLE_ALLOCATIONS.reset()
    r = run_experiment(cfg)
    assert SAMPLE_ALLOCATIONS.count == 0
    assert r.fetch_stages.get("decode", 0.0) == 0.0
    scatter = r.fetch_stages.get("scatter", 0.0)
    assert scatter > 0.0
    # Budget: the row path would have paid at least per-sample decode base
    # cost for every sample this rank loaded; scatter must be far cheaper.
    machine = get_machine(cfg.machine)
    n_per_rank = cfg.batch_size * cfg.steps_per_epoch
    row_decode_floor = n_per_rank * decode_time(machine, 0)
    assert scatter < row_decode_floor / 2
    # The row twin of the same cell does decode and does allocate.
    SAMPLE_ALLOCATIONS.reset()
    row = run_experiment(
        ExperimentConfig(
            machine="perlmutter",
            n_nodes=1,
            dataset="ising",
            method="ddstore",
            batch_size=4,
            steps_per_epoch=2,
        )
    )
    assert SAMPLE_ALLOCATIONS.count > 0
    assert row.fetch_stages.get("decode", 0.0) > 0.0
    assert row.fetch_stages.get("scatter", 0.0) == 0.0
    SAMPLE_ALLOCATIONS.reset()
