"""Tests for regression metrics (exactness, streaming equivalence)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gnn.metrics import RegressionMetrics, mae, max_error, r_squared, rmse


def test_perfect_prediction():
    t = np.arange(10.0)
    assert mae(t, t) == 0.0
    assert rmse(t, t) == 0.0
    assert max_error(t, t) == 0.0
    assert r_squared(t, t) == 1.0


def test_known_values():
    pred = np.array([1.0, 2.0, 3.0])
    target = np.array([2.0, 2.0, 5.0])
    assert mae(pred, target) == pytest.approx(1.0)
    assert rmse(pred, target) == pytest.approx(np.sqrt(5 / 3))
    assert max_error(pred, target) == 2.0


def test_r_squared_mean_predictor_is_zero():
    target = np.array([1.0, 2.0, 3.0, 4.0])
    pred = np.full(4, target.mean())
    assert r_squared(pred, target) == pytest.approx(0.0)


def test_r_squared_constant_target_edge_case():
    t = np.ones(5)
    assert r_squared(t, t) == 1.0
    assert r_squared(t + 0.5, t) == 0.0


def test_validation():
    with pytest.raises(ValueError, match="shape"):
        mae(np.zeros(2), np.zeros(3))
    with pytest.raises(ValueError, match="empty"):
        rmse(np.zeros(0), np.zeros(0))
    with pytest.raises(ValueError, match="no data"):
        _ = RegressionMetrics().mae


@given(
    n=st.integers(min_value=2, max_value=200),
    chunks=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=50, deadline=None)
def test_streaming_equals_batch(n, chunks, seed):
    rng = np.random.default_rng(seed)
    pred = rng.normal(size=n)
    target = rng.normal(size=n)
    acc = RegressionMetrics()
    for part in np.array_split(np.arange(n), min(chunks, n)):
        if part.size:
            acc.update(pred[part], target[part])
    assert acc.mae == pytest.approx(mae(pred, target))
    assert acc.rmse == pytest.approx(rmse(pred, target))
    assert acc.max_error == pytest.approx(max_error(pred, target))
    assert acc.r_squared == pytest.approx(r_squared(pred, target), abs=1e-9)


def test_summary_keys():
    acc = RegressionMetrics()
    acc.update(np.array([1.0, 2.0]), np.array([1.5, 2.5]))
    s = acc.summary()
    assert set(s) == {"n", "mae", "rmse", "mse", "max_error", "r_squared"}
    assert s["n"] == 2


def test_metrics_on_trained_model_predictions():
    # End-to-end: a trained model must beat the mean predictor (R^2 > 0).
    from repro.gnn import AdamW, HydraGNN, HydraGNNConfig
    from repro.graphs import IsingGenerator, collate

    gen = IsingGenerator(48, seed=0)
    batch = collate([gen.make(i) for i in range(48)])
    model = HydraGNN(
        HydraGNNConfig(feature_dim=1, head_dims=(1,), hidden_dim=16, n_conv_layers=2),
        seed=2,
    )
    opt = AdamW(model.params(), lr=3e-3, weight_decay=0.0)
    for _ in range(100):
        opt.zero_grad()
        model.train_step_loss(batch)
        opt.step()
    pred = model.forward_batch(batch)[0][:, 0]
    assert r_squared(pred, batch.y[:, 0].astype(np.float64)) > 0.5
