"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import ABLATIONS, BENCHES, EXPERIMENTS, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig4", "table2", "fig13", "ablation-nvme"):
        assert name in out


def test_machines_command(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "summit" in out and "perlmutter" in out
    assert "1.6 TB/node" in out  # Summit burst buffer
    assert "none" in out  # Perlmutter has no node-local NVMe


def test_datasets_command(capsys):
    assert main(["datasets", "--samples", "5"]) == 0
    out = capsys.readouterr().out
    assert "Ising" in out and "AISD" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_single_experiment(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert main(["run", "table1"]) == 0
    assert os.path.exists(tmp_path / "table1.txt")
    assert "Table 1" in capsys.readouterr().out


def test_experiment_registry_complete():
    # Every paper table/figure is runnable from the CLI.
    for key in ("table1", "table2", "table3") + tuple(f"fig{i}" for i in range(4, 14)):
        assert key in EXPERIMENTS


def test_bench_and_ablation_registries_split_the_union():
    assert set(EXPERIMENTS) == set(BENCHES) | set(ABLATIONS)
    assert not set(BENCHES) & set(ABLATIONS)
    assert "ablation-serving" in ABLATIONS and "ablation-serving" not in BENCHES


def test_bench_subcommand_rejects_ablation_names(capsys):
    # The split registries are enforced: ablations are not benches.
    assert main(["bench", "ablation-serving"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_bench_subcommand_runs_a_table(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert main(["bench", "table1"]) == 0
    assert os.path.exists(tmp_path / "table1.txt")


def test_ablation_short_names_resolve(capsys):
    # `ablation serving` resolves to `ablation-serving` — the unknown-name
    # path proves resolution happens before rejection.
    assert main(["ablation", "not-an-ablation"]) == 2
    err = capsys.readouterr().err
    assert "ablation-serving" in err  # listed as available


def test_run_spelling_is_deprecated_but_works(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert main(["run", "table1"]) == 0
    captured = capsys.readouterr()
    assert "[deprecated]" in captured.err
    assert "python -m repro bench" in captured.err


def test_bench_spelling_prints_no_deprecation(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert main(["bench", "table1"]) == 0
    assert "[deprecated]" not in capsys.readouterr().err


def test_ls_alias_for_list(capsys):
    assert main(["ls"]) == 0
    out = capsys.readouterr().out
    assert "ablation-serving" in out
