"""Tests for simulated MPI point-to-point messaging."""

import numpy as np
import pytest

from repro.hardware import TESTBOX
from repro.mpi import ANY_SOURCE, ANY_TAG, MPIError, run_world, waitall


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def test_send_recv_roundtrip():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send({"a": 7}, dest=1, tag=11)
            return None
        if ctx.rank == 1:
            data = yield from ctx.comm.recv(source=0, tag=11)
            return data
        return None

    job = run(main)
    assert job.results[1] == {"a": 7}
    assert job.elapsed > 0


def test_numpy_payload_arrives_intact():
    payload = np.arange(1000, dtype=np.float64)

    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(payload, dest=3)
        elif ctx.rank == 3:
            data = yield from ctx.comm.recv(source=0)
            return data
        return None
        yield  # pragma: no cover

    job = run(main)
    assert np.array_equal(job.results[3], payload)


def test_recv_before_send_blocks_until_arrival():
    def main(ctx):
        if ctx.rank == 1:
            data = yield from ctx.comm.recv(source=0)
            return (data, ctx.now)
        if ctx.rank == 0:
            yield ctx.engine.timeout(0.5)
            yield from ctx.comm.send("late", dest=1)
        return None

    job = run(main)
    data, when = job.results[1]
    assert data == "late"
    assert when > 0.5


def test_tag_matching_selects_correct_message():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send("tag5", dest=1, tag=5)
            yield from ctx.comm.send("tag9", dest=1, tag=9)
        elif ctx.rank == 1:
            nine = yield from ctx.comm.recv(source=0, tag=9)
            five = yield from ctx.comm.recv(source=0, tag=5)
            return (nine, five)
        return None
        yield  # pragma: no cover

    job = run(main)
    assert job.results[1] == ("tag9", "tag5")


def test_any_source_any_tag_wildcards():
    def main(ctx):
        if ctx.rank in (0, 2):
            yield from ctx.comm.send(f"from{ctx.rank}", dest=1, tag=ctx.rank)
        elif ctx.rank == 1:
            a = yield from ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            b = yield from ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return sorted([a, b])
        return None
        yield  # pragma: no cover

    job = run(main)
    assert job.results[1] == ["from0", "from2"]


def test_fifo_order_same_source_same_tag():
    def main(ctx):
        if ctx.rank == 0:
            for i in range(5):
                yield from ctx.comm.send(i, dest=1, tag=0)
        elif ctx.rank == 1:
            got = []
            for _ in range(5):
                got.append((yield from ctx.comm.recv(source=0, tag=0)))
            return got
        return None
        yield  # pragma: no cover

    job = run(main)
    assert job.results[1] == [0, 1, 2, 3, 4]


def test_isend_waitall_overlaps_transfers():
    def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(np.zeros(100_000), dest=d) for d in (1, 2, 3)]
            yield from waitall(reqs)
            return ctx.now
        data = yield from ctx.comm.recv(source=0)
        return data.shape

    job = run(main)
    assert job.results[1] == (100_000,)
    assert job.results[2] == (100_000,)


def test_sendrecv_exchange_no_deadlock():
    def main(ctx):
        peer = 1 - ctx.rank if ctx.rank < 2 else ctx.rank
        if ctx.rank < 2:
            got = yield from ctx.comm.sendrecv(ctx.rank * 10, dest=peer, source=peer)
            return got
        return None
        yield  # pragma: no cover

    job = run(main, n_nodes=1)
    assert job.results[0] == 10
    assert job.results[1] == 0


def test_both_send_first_no_deadlock():
    # Buffered-send semantics: two ranks that each send before receiving
    # must not deadlock.
    def main(ctx):
        if ctx.rank >= 2:
            return None
        peer = 1 - ctx.rank
        yield from ctx.comm.send(f"hi{ctx.rank}", dest=peer)
        got = yield from ctx.comm.recv(source=peer)
        return got

    job = run(main, n_nodes=1)
    assert job.results[0] == "hi1"
    assert job.results[1] == "hi0"


def test_send_to_invalid_rank_raises():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(1, dest=99)
        return None
        yield  # pragma: no cover

    with pytest.raises(MPIError, match="invalid rank"):
        run(main)


def test_intra_node_faster_than_inter_node():
    # TESTBOX: ranks 0,1 share node 0; rank 2 lives on node 1.
    def main(ctx, dest):
        if ctx.rank == 0:
            t0 = ctx.now
            yield from ctx.comm.send(np.zeros(1_000_000), dest=dest)
            return ctx.now - t0
        if ctx.rank == dest:
            yield from ctx.comm.recv(source=0)
        return None

    intra = run(lambda ctx: main(ctx, 1), seed=1).results[0]
    inter = run(lambda ctx: main(ctx, 2), seed=1).results[0]
    assert intra < inter


def test_stats_record_send_recv_time():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.send(np.zeros(10_000), dest=1)
        elif ctx.rank == 1:
            yield from ctx.comm.recv(source=0)
        return None

    job = run(main)
    assert job.world.stats[0].count_by_call["MPI_Send"] == 1
    assert job.world.stats[1].count_by_call["MPI_Recv"] == 1
    assert job.world.stats[1].time_by_call["MPI_Recv"] > 0
    merged = job.merged_stats()
    assert merged.count_by_call["MPI_Send"] == 1
