"""Tests for one-sided RMA (windows, lock epochs, get/put, batching)."""

import numpy as np
import pytest

from repro.hardware import TESTBOX
from repro.mpi import (
    LOCK_EXCLUSIVE,
    LOCK_SHARED,
    RMAError,
    create_window,
    run_world,
)


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def _make_local(rank, size=64):
    """Each rank exposes `size` bytes filled with its rank id."""
    return np.full(size, rank, dtype=np.uint8)


def test_get_reads_remote_bytes():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        target = (ctx.rank + 1) % ctx.size
        yield from win.lock(target, LOCK_SHARED)
        data = yield from win.get(target, offset=0, nbytes=16)
        yield from win.unlock(target)
        return data

    job = run(main)
    for rank, data in enumerate(job.results):
        assert np.all(data == (rank + 1) % 4)
        assert data.dtype == np.uint8 and data.size == 16


def test_get_offset_slicing():
    def main(ctx):
        buf = np.arange(ctx.rank * 100, ctx.rank * 100 + 100, dtype=np.int32)
        win = yield from create_window(ctx.comm, buf)
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(1, LOCK_SHARED)
            raw = yield from win.get(1, offset=4 * 10, nbytes=4 * 5)
            yield from win.unlock(1)
            return raw.view(np.int32)
        return None

    job = run(main)
    assert np.array_equal(job.results[0], np.arange(110, 115, dtype=np.int32))


def test_get_without_lock_raises():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.get(1, 0, 8)
        else:
            yield from win.fence()  # keep others parked past the failure

    with pytest.raises(RMAError, match="outside a lock epoch"):
        run(main)


def test_get_out_of_range_raises():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank, size=32))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(1, LOCK_SHARED)
            yield from win.get(1, offset=30, nbytes=8)
        return None

    with pytest.raises(RMAError, match="exceeds window"):
        run(main)


def test_double_lock_raises():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(1, LOCK_SHARED)
            yield from win.lock(1, LOCK_SHARED)
        return None

    with pytest.raises(RMAError, match="already holds"):
        run(main)


def test_unlock_without_lock_raises():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.unlock(2)
        return None

    with pytest.raises(RMAError, match="does not hold"):
        run(main)


def test_shared_locks_allow_concurrent_readers():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank != 3:
            yield from win.lock(3, LOCK_SHARED)
            t0 = ctx.now
            yield from win.get(3, 0, 32)
            yield from win.unlock(3)
            return (t0, ctx.now)
        return None

    job = run(main)
    starts = [r[0] for r in job.results[:3]]
    # All readers enter their epoch immediately (no serialisation at lock).
    assert max(starts) - min(starts) < 1e-6


def test_exclusive_lock_blocks_readers_until_released():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(2, LOCK_EXCLUSIVE)
            yield ctx.engine.timeout(1.0)
            yield from win.put(np.full(8, 99, dtype=np.uint8), 2, 0)
            yield from win.unlock(2)
            return None
        if ctx.rank == 1:
            yield ctx.engine.timeout(0.1)  # arrive while 0 holds exclusive
            yield from win.lock(2, LOCK_SHARED)
            entered = ctx.now
            data = yield from win.get(2, 0, 8)
            yield from win.unlock(2)
            return (entered, data)
        return None

    job = run(main)
    entered, data = job.results[1]
    assert entered >= 1.0  # had to wait for the exclusive epoch to end
    assert np.all(data == 99)  # and observed the completed put


def test_put_requires_exclusive_lock():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(1, LOCK_SHARED)
            yield from win.put(b"\x01\x02", 1, 0)
        return None

    with pytest.raises(RMAError, match="exclusive"):
        run(main)


def test_put_roundtrip_visible_to_target():
    def main(ctx):
        buf = np.zeros(16, dtype=np.uint8)
        win = yield from create_window(ctx.comm, buf)
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(3, LOCK_EXCLUSIVE)
            yield from win.put(np.arange(16, dtype=np.uint8), 3, 0)
            yield from win.unlock(3)
        yield from win.fence()
        return win.local.copy()

    job = run(main)
    assert np.array_equal(job.results[3], np.arange(16, dtype=np.uint8))
    assert np.all(job.results[1] == 0)


def test_get_batch_order_and_contents():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            for t in (1, 2, 3):
                yield from win.lock(t, LOCK_SHARED)
            out = yield from win.get_batch([(3, 0, 4), (1, 0, 4), (2, 0, 4)])
            for t in (1, 2, 3):
                yield from win.unlock(t)
            return [int(p[0]) for p in out]
        return None

    job = run(main)
    assert job.results[0] == [3, 1, 2]


def test_get_batch_empty_is_noop():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        out = yield from win.get_batch([])
        return out

    job = run(main, n_nodes=1)
    assert job.results == [[], []]


def test_get_returns_copy_not_view():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(1, LOCK_SHARED)
            data = yield from win.get(1, 0, 8)
            yield from win.unlock(1)
            before = data.copy()
            win.window.buffers[1][:] = 255  # target mutates afterwards
            return np.array_equal(data, before)
        return None

    job = run(main)
    assert job.results[0] is True


def test_get_log_records_latencies():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank))
        win.window.record_gets = True
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(2, LOCK_SHARED)
            yield from win.get_batch([(2, 0, 8)] * 5)
            yield from win.unlock(2)
        yield from win.fence()
        return len(win.window.get_log)

    job = run(main)
    assert job.results[0] == 5
    assert all(n == 5 for n in job.results)  # shared window object


def test_window_from_int_allocates_zeroed():
    def main(ctx):
        win = yield from create_window(ctx.comm, 32)
        yield from win.fence()
        if ctx.rank == 1:
            yield from win.lock(0, LOCK_SHARED)
            data = yield from win.get(0, 0, 32)
            yield from win.unlock(0)
            return int(data.sum())
        return None

    job = run(main)
    assert job.results[1] == 0


def test_remote_get_slower_than_local_get():
    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank, 4096))
        yield from win.fence()
        if ctx.rank == 0:
            yield from win.lock(1, LOCK_SHARED)  # same node on TESTBOX
            t0 = ctx.now
            yield from win.get(1, 0, 4096)
            local_dt = ctx.now - t0
            yield from win.unlock(1)
            yield from win.lock(2, LOCK_SHARED)  # remote node
            t0 = ctx.now
            yield from win.get(2, 0, 4096)
            remote_dt = ctx.now - t0
            yield from win.unlock(2)
            return (local_dt, remote_dt)
        return None

    job = run(main, jitter_sigma=0.0)
    local_dt, remote_dt = job.results[0]
    assert local_dt < remote_dt


def test_get_batch_all_requests_timeout():
    """When every get blows its deadline: all payloads None, the timeout
    mask is all-True, and each read's observed latency is exactly the
    timeout window (the origin abandons the gets at issue + timeout)."""

    def main(ctx):
        win = yield from create_window(ctx.comm, _make_local(ctx.rank, 256))
        yield from win.fence()
        if ctx.rank == 0:
            timeout = 1e-12  # far below any wire latency: all must trip
            requests = [(2, 0, 64), (2, 64, 64), (3, 0, 64)]
            yield from win.lock(2, LOCK_SHARED)
            yield from win.lock(3, LOCK_SHARED)
            t0 = ctx.now
            payloads = yield from win.get_batch(requests, timeout_s=timeout)
            waited = ctx.now - t0
            timed_out = win.last_timeouts.copy()
            latencies = win.last_latencies.copy()
            yield from win.unlock(2)
            yield from win.unlock(3)

            yield from win.lock(2, LOCK_SHARED)
            full = yield from win.get_batch([(2, 0, 64)])  # sanity: data exists
            yield from win.unlock(2)
            return (
                payloads,
                bool(timed_out.all()),
                latencies,
                waited,
                timeout,
                full[0],
            )
        return None

    job = run(main, n_nodes=2)
    payloads, all_timed_out, latencies, waited, timeout, full = job.results[0]
    assert payloads == [None, None, None]
    assert all_timed_out
    # Abandonment caps each observed latency at exactly the window.
    assert np.allclose(latencies, timeout)
    # The origin's total wait spans the last issue plus the window — far
    # below what the transfers themselves would have taken.
    assert waited >= timeout
    assert np.all(full == 2)  # the untimed re-read still sees the bytes
