"""Unit tests for the hardware models (topology, network, PFS, GPU)."""

import numpy as np
import pytest

from repro.hardware import (
    Cluster,
    GnnWorkload,
    GpuModel,
    Interconnect,
    PageCache,
    ParallelFileSystem,
    PERLMUTTER,
    SUMMIT,
    TESTBOX,
    get_machine,
)
from repro.sim import Engine


@pytest.fixture
def cluster():
    return Cluster(Engine(), TESTBOX, n_nodes=4)


# ---------------------------------------------------------------------------
# topology
# ---------------------------------------------------------------------------

def test_machine_registry():
    assert get_machine("summit") is SUMMIT
    assert get_machine("perlmutter") is PERLMUTTER
    with pytest.raises(KeyError):
        get_machine("frontier")


def test_rank_to_node_mapping(cluster):
    # TESTBOX has 2 GPUs per node.
    assert cluster.spec.node_of_rank(0) == 0
    assert cluster.spec.node_of_rank(1) == 0
    assert cluster.spec.node_of_rank(2) == 1
    assert cluster.n_ranks == 8
    assert cluster.same_node(0, 1)
    assert not cluster.same_node(1, 2)


def test_rank_outside_cluster_rejected(cluster):
    with pytest.raises(IndexError):
        cluster.node_of_rank(99)


def test_memory_accounting_overcommit(cluster):
    cluster.charge_memory(0, 2 * 2**30)
    with pytest.raises(MemoryError, match="over-committed"):
        cluster.charge_memory(0, 3 * 2**30)
    cluster.release_memory(0, 2 * 2**30)
    assert cluster.nodes[0].mem_used_bytes > 0  # failed charge still counted


def test_summit_perlmutter_shape():
    assert SUMMIT.gpus_per_node == 6
    assert PERLMUTTER.gpus_per_node == 4
    assert SUMMIT.mem_per_node_bytes == 512 * 2**30
    assert PERLMUTTER.mem_per_node_bytes == 256 * 2**30


# ---------------------------------------------------------------------------
# interconnect
# ---------------------------------------------------------------------------

def test_rma_local_faster_than_remote(cluster):
    net = Interconnect(cluster, jitter_sigma=0.0)
    local = net.rma_get(0, 1, 4096, arrival=0.0)  # same node
    remote = net.rma_get(0, 2, 4096, arrival=0.0)  # different node
    assert not local.remote
    assert remote.remote
    assert local.latency < remote.latency


def test_rma_batch_shapes_and_serial_issue(cluster):
    net = Interconnect(cluster, jitter_sigma=0.0)
    targets = np.array([2, 4, 6])
    sizes = np.array([1000, 2000, 3000])
    batch = net.rma_get_batch(0, targets, sizes, arrival=0.0)
    assert batch.completions.shape == (3,)
    assert np.all(batch.completions > 0)
    assert np.all(batch.latencies > 0)
    # Origin CPU issues the gets serially.
    assert np.all(np.diff(batch.issues) > 0)
    assert batch.finish == batch.completions.max()


def test_rma_contention_single_target_slower_than_spread(cluster):
    # Several origin nodes hammering ONE target node must finish later than
    # the same load spread over distinct targets: the target's outbound NIC
    # is the shared bottleneck. This is the effect DDStore's width mitigates.
    n_per_origin = 32
    size = 64 * 1024

    def run(targets_by_origin):
        net = Interconnect(Cluster(Engine(), TESTBOX, n_nodes=4), jitter_sigma=0.0)
        worst = 0.0
        for origin, target in targets_by_origin:
            done = net.rma_get_batch(
                origin, np.full(n_per_origin, target), np.full(n_per_origin, size), 0.0
            )
            worst = max(worst, done.finish)
        return worst

    # Origins on nodes 0, 2, 3; hot case all pull from rank 2 (node 1).
    hot = run([(0, 2), (4, 2), (6, 2)])
    spread = run([(0, 2), (4, 6), (6, 4)])
    assert hot > spread


def test_rma_empty_batch(cluster):
    net = Interconnect(cluster)
    out = net.rma_get_batch(0, np.array([], dtype=np.int64), np.array([]), arrival=0.0)
    assert out.completions.size == 0
    assert out.finish == 0.0


def test_rma_shape_mismatch_rejected(cluster):
    net = Interconnect(cluster)
    with pytest.raises(ValueError):
        net.rma_get_batch(0, np.array([1, 2]), np.array([10]), arrival=0.0)


def test_rma_jitter_deterministic():
    def run():
        cl = Cluster(Engine(), TESTBOX, n_nodes=4)
        net = Interconnect(cl, jitter_sigma=0.2, seed=7)
        return net.rma_get_batch(0, np.full(16, 2), np.full(16, 4096), arrival=0.0)

    a, b = run(), run()
    assert np.array_equal(a.completions, b.completions)
    assert np.array_equal(a.issues, b.issues)


def test_bigger_payload_takes_longer(cluster):
    net = Interconnect(cluster, jitter_sigma=0.0)
    small = net.rma_get(0, 2, 1_000, arrival=0.0)
    big = net.rma_get(1, 4, 10_000_000, arrival=0.0)
    assert big.latency > small.latency


def test_send_time_orders_messages_through_nic(cluster):
    net = Interconnect(cluster, jitter_sigma=0.0)
    t1 = net.send_time(0, 2, 1_000_000, arrival=0.0)
    t2 = net.send_time(0, 2, 1_000_000, arrival=0.0)
    assert t2 > t1  # second message queues behind the first


def test_collective_time_scaling(cluster):
    net = Interconnect(cluster, jitter_sigma=0.0)
    t64 = net.collective_time("allreduce", 4 * 2**20, 64)
    t512 = net.collective_time("allreduce", 4 * 2**20, 512)
    assert t512 > t64
    assert net.collective_time("barrier", 0, 1) == 0.0
    with pytest.raises(ValueError):
        net.collective_time("fft", 0, 8)


# ---------------------------------------------------------------------------
# page cache
# ---------------------------------------------------------------------------

def test_page_cache_hit_after_miss():
    pc = PageCache(capacity_bytes=16 * 2**20, block_bytes=2**20)
    hit, miss = pc.access(1, 0, 100)
    assert (hit, miss) == (0, 1)
    hit, miss = pc.access(1, 0, 100)
    assert (hit, miss) == (1, 0)
    assert pc.hit_rate == pytest.approx(0.5)


def test_page_cache_eviction_lru():
    pc = PageCache(capacity_bytes=2 * 2**20, block_bytes=2**20)  # 2 blocks
    pc.access(1, 0, 1)  # block 0
    pc.access(1, 2**20, 1)  # block 1
    pc.access(1, 0, 1)  # touch block 0 -> block 1 is now LRU
    pc.access(1, 2 * 2**20, 1)  # block 2 evicts block 1
    assert pc.contains(1, 0, 1)
    assert not pc.contains(1, 2**20, 1)


def test_page_cache_prefetch_counts_no_hits():
    pc = PageCache(capacity_bytes=8 * 2**20, block_bytes=2**20)
    added = pc.prefetch(5, 0, 3 * 2**20)
    assert added == 3
    assert pc.hits == 0 and pc.misses == 0
    hit, miss = pc.access(5, 0, 2**20)
    assert miss == 0 and hit >= 1


def test_page_cache_spanning_read():
    pc = PageCache(capacity_bytes=64 * 2**20, block_bytes=2**20)
    hit, miss = pc.access(9, 2**20 - 10, 20)  # spans blocks 0 and 1
    assert hit + miss == 2


# ---------------------------------------------------------------------------
# PFS
# ---------------------------------------------------------------------------

def test_pfs_metadata_contention_grows_queue():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=4)
    firsts = [pfs.metadata_op(path_hash=0, arrival=0.0) for _ in range(50)]
    # All hitting the same MDS at t=0: queueing delay accumulates, so the
    # later half of the ops completes much later than the earlier half.
    early = sum(firsts[:10]) / 10
    late = sum(firsts[-10:]) / 10
    assert late > early + 10 * TESTBOX.pfs.metadata_service_s
    assert pfs.metadata_ops == 50


def test_pfs_read_cached_second_time_faster():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=2)
    cold = pfs.read(0, file_id=1, offset=0, nbytes=1000, arrival=0.0)
    warm = pfs.read(0, file_id=1, offset=0, nbytes=1000, arrival=cold.completion)
    assert warm.latency < cold.latency
    assert warm.cached_fraction == 1.0
    assert cold.cached_fraction == 0.0


def test_pfs_caches_are_per_node():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=2)
    pfs.read(0, file_id=1, offset=0, nbytes=1000, arrival=0.0)
    other = pfs.read(1, file_id=1, offset=0, nbytes=1000, arrival=1.0)
    assert other.cached_fraction == 0.0  # node 1 never read this file


def test_pfs_sequential_readahead_warms_cache():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=1)
    first = pfs.read(0, file_id=3, offset=0, nbytes=4096, arrival=0.0, sequential=True)
    nxt = pfs.read(0, file_id=3, offset=4096, nbytes=4096, arrival=first.completion)
    assert nxt.cached_fraction == 1.0


def test_pfs_drop_caches():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=1)
    pfs.read(0, file_id=1, offset=0, nbytes=100, arrival=0.0)
    pfs.drop_caches()
    again = pfs.read(0, file_id=1, offset=0, nbytes=100, arrival=10.0)
    assert again.cached_fraction == 0.0


def test_pfs_rejects_negative_read():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=1)
    with pytest.raises(ValueError):
        pfs.read(0, file_id=1, offset=0, nbytes=-1, arrival=0.0)


def test_pfs_write_advances_time():
    eng = Engine()
    pfs = ParallelFileSystem(eng, TESTBOX.pfs, n_client_nodes=1)
    t = pfs.write(0, file_id=7, nbytes=50 * 2**20, arrival=0.0)
    assert t > 0.0


# ---------------------------------------------------------------------------
# GPU model
# ---------------------------------------------------------------------------

def _workload(n_graphs=128):
    return GnnWorkload(
        n_graphs=n_graphs,
        n_nodes=n_graphs * 52,
        n_edges=n_graphs * 110,
        node_feature_dim=8,
        output_dim=100,
    )


def test_gpu_backward_costs_more_than_forward():
    gpu = GpuModel(SUMMIT.gpu)
    w = _workload()
    assert gpu.backward_time(w) > gpu.forward_time(w)


def test_gpu_time_scales_with_batch():
    gpu = GpuModel(PERLMUTTER.gpu)
    small, big = _workload(32), _workload(256)
    assert gpu.forward_time(big) > gpu.forward_time(small)


def test_gpu_flops_positive_and_monotone_in_output_dim():
    w_small = GnnWorkload(128, 6656, 14080, 8, output_dim=1)
    w_big = GnnWorkload(128, 6656, 14080, 8, output_dim=37500)
    assert 0 < w_small.forward_flops() < w_big.forward_flops()


def test_gpu_h2d_and_optimizer_positive():
    gpu = GpuModel(SUMMIT.gpu)
    assert gpu.h2d_time(10 * 2**20) > 0
    assert gpu.optimizer_time(1_000_000) > 0


def test_workload_batch_bytes_counts_features():
    lo = GnnWorkload(10, 520, 1100, 1, 1).batch_bytes()
    hi = GnnWorkload(10, 520, 1100, 1, 37500).batch_bytes()
    assert hi > lo
