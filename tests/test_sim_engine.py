"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Interrupt, SimulationError


def test_timeout_advances_clock():
    eng = Engine()

    def proc():
        yield eng.timeout(1.5)
        yield eng.timeout(2.5)
        return eng.now

    p = eng.process(proc())
    result = eng.run(until=p)
    assert result == pytest.approx(4.0)
    assert eng.now == pytest.approx(4.0)


def test_timeout_rejects_negative_delay():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_zero_delay_timeouts_fire_in_fifo_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.timeout(0)
        order.append(tag)

    for tag in range(5):
        eng.process(proc(tag))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value_propagates():
    eng = Engine()

    def child():
        yield eng.timeout(3)
        return "payload"

    def parent():
        value = yield eng.process(child())
        return value + "!"

    p = eng.process(parent())
    assert eng.run(until=p) == "payload!"


def test_event_succeed_wakes_waiter_with_value():
    eng = Engine()
    ev = eng.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def trigger():
        yield eng.timeout(2)
        ev.succeed(42)

    eng.process(waiter())
    eng.process(trigger())
    eng.run()
    assert got == [42]


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event()
    seen = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            seen.append(str(exc))

    eng.process(waiter())
    ev.fail(ValueError("boom"))
    eng.run()
    assert seen == ["boom"]


def test_double_trigger_is_an_error():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_value_before_trigger_is_an_error():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_unhandled_process_exception_surfaces_from_run():
    eng = Engine()

    def bad():
        yield eng.timeout(1)
        raise RuntimeError("kaboom")

    eng.process(bad())
    with pytest.raises(RuntimeError, match="kaboom"):
        eng.run()


def test_yielding_non_event_fails_the_process():
    eng = Engine()

    def bad():
        yield 42

    p = eng.process(bad())
    eng.run()
    assert p.triggered
    with pytest.raises(SimulationError):
        _ = p.value


def test_all_of_collects_values_in_child_order():
    eng = Engine()
    a = eng.timeout(5, value="a")
    b = eng.timeout(1, value="b")
    combined = eng.all_of([a, b])
    results = []

    def waiter():
        values = yield combined
        results.append((eng.now, values))

    eng.process(waiter())
    eng.run()
    assert results == [(5.0, ["a", "b"])]


def test_all_of_empty_triggers_immediately():
    eng = Engine()
    combined = eng.all_of([])
    done = []

    def waiter():
        values = yield combined
        done.append(values)

    eng.process(waiter())
    eng.run()
    assert done == [[]]


def test_any_of_returns_first_index_and_value():
    eng = Engine()
    a = eng.timeout(5, value="slow")
    b = eng.timeout(1, value="fast")
    got = []

    def waiter():
        idx, value = yield eng.any_of([a, b])
        got.append((idx, value, eng.now))

    eng.process(waiter())
    eng.run(until=10)
    assert got == [(1, "fast", 1.0)]


def test_any_of_requires_children():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.any_of([])


def test_run_until_deadline_stops_clock_at_deadline():
    eng = Engine()

    def proc():
        yield eng.timeout(100)

    eng.process(proc())
    eng.run(until=7.0)
    assert eng.now == pytest.approx(7.0)
    assert eng.peek() == pytest.approx(100.0)


def test_run_until_event_deadlock_detection():
    eng = Engine()
    never = eng.event()

    def waiter():
        yield never

    eng.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        eng.run(until=never)


def test_interrupt_raises_inside_process():
    eng = Engine()
    caught = []

    def sleeper():
        try:
            yield eng.timeout(100)
        except Interrupt as exc:
            caught.append((eng.now, exc.cause))

    p = eng.process(sleeper())

    def killer():
        yield eng.timeout(3)
        p.interrupt(cause="stop")

    eng.process(killer())
    eng.run()
    assert caught == [(3.0, "stop")]


def test_schedule_call_runs_function_at_time():
    eng = Engine()
    seen = []
    eng.schedule_call(4.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [4.5]


def test_deterministic_ordering_two_runs_identical():
    def build():
        eng = Engine()
        trace = []

        def proc(tag, delay):
            yield eng.timeout(delay)
            trace.append(tag)
            yield eng.timeout(delay)
            trace.append(tag * 10)

        for tag in range(8):
            eng.process(proc(tag, (tag % 3) * 0.5))
        eng.run()
        return trace

    assert build() == build()


def test_nested_processes_three_levels():
    eng = Engine()

    def level3():
        yield eng.timeout(1)
        return 3

    def level2():
        v = yield eng.process(level3())
        yield eng.timeout(1)
        return v + 2

    def level1():
        v = yield eng.process(level2())
        return v + 1

    p = eng.process(level1())
    assert eng.run(until=p) == 6
    assert eng.now == pytest.approx(2.0)
