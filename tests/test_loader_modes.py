"""Tests for stats-mode datasets, preloader plugins, and loader parity.

The performance sweeps run with ``stats_only=True`` (no real decode or
collate); these tests pin the key invariant: *virtual time is identical
in both modes* — only wall-clock work differs.
"""

import numpy as np
import pytest

from repro.core import (
    BatchStats,
    DataLoader,
    DDStore,
    DDStoreDataset,
    FileDataset,
    GeneratorSource,
    ReaderSource,
)
from repro.graphs import IsingGenerator, MoleculeGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world
from repro.storage import CFFReader, CFFWriter, PFFReader, PFFWriter, SampleStats, pack_graph


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


# ---------------------------------------------------------------------------
# SampleStats / BatchStats
# ---------------------------------------------------------------------------

def test_sample_stats_from_blob_matches_graph():
    g = MoleculeGenerator(3, seed=0).make(1)
    s = SampleStats.from_blob(pack_graph(g))
    assert (s.sample_id, s.n_nodes, s.n_edges) == (1, g.n_nodes, g.n_edges)
    assert s.feature_dim == g.feature_dim
    assert s.output_dim == g.output_dim
    assert s.nbytes == len(pack_graph(g))


def test_batch_stats_aggregates():
    gen = IsingGenerator(4, seed=0)
    samples = [SampleStats.from_blob(pack_graph(gen.make(i))) for i in range(4)]
    b = BatchStats.from_samples(samples)
    assert b.n_graphs == 4
    assert b.n_nodes == 4 * 125
    assert b.n_edges == 4 * 600
    assert b.nbytes == sum(s.nbytes for s in samples)


# ---------------------------------------------------------------------------
# stats-only fetch parity (virtual time identical, content is headers)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt", ["pff", "cff"])
def test_file_dataset_stats_mode_same_virtual_time(fmt):
    def main(ctx, stats_only):
        vfs = ctx.world.vfs
        gen = IsingGenerator(16, seed=1)
        if ctx.rank == 0:
            if fmt == "pff":
                PFFWriter.write(vfs, "d", gen)
            else:
                CFFWriter.write(vfs, "d", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        reader = (
            PFFReader(vfs, "d", 16, ctx.world.machine)
            if fmt == "pff"
            else CFFReader(vfs, "d", ctx.world.machine)
        )
        ds = FileDataset(reader, ctx, stats_only=stats_only)
        result = yield from ds.fetch([0, 5, 9])
        return ctx.now, result

    t_real, res_real = run(lambda c: main(c, False), seed=2).results[0]
    t_stats, res_stats = run(lambda c: main(c, True), seed=2).results[0]
    assert t_stats == pytest.approx(t_real, rel=1e-12)
    assert np.allclose(res_stats.per_sample_latency, res_real.per_sample_latency)
    # Content: stats mode returns headers for the same samples.
    for g, s in zip(res_real.graphs, res_stats.graphs):
        assert isinstance(s, SampleStats)
        assert (s.n_nodes, s.n_edges) == (g.n_nodes, g.n_edges)


def test_ddstore_stats_mode_same_virtual_time():
    def main(ctx, stats_only):
        src = GeneratorSource(IsingGenerator(16, seed=0), ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, src, record_latencies=True)
        ds = DDStoreDataset(store, stats_only=stats_only)
        result = yield from ds.fetch([15, 3, 8])
        return ctx.now, [type(g).__name__ for g in result.graphs]

    t_real, kinds_real = run(lambda c: main(c, False), seed=1).results[0]
    t_stats, kinds_stats = run(lambda c: main(c, True), seed=1).results[0]
    assert t_stats == pytest.approx(t_real, rel=1e-12)
    assert kinds_real == ["AtomicGraph"] * 3
    assert kinds_stats == ["SampleStats"] * 3


def test_dataloader_stats_mode_yields_batch_stats():
    def main(ctx):
        src = GeneratorSource(IsingGenerator(32, seed=0), ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, src)
        loader = DataLoader(
            DDStoreDataset(store, stats_only=True), ctx, batch_size=4
        )
        loaded = yield from loader.load(loader.epoch_batches(0)[0])
        return loaded.batch

    batch = run(main).results[0]
    assert isinstance(batch, BatchStats)
    assert batch.n_graphs == 4
    assert batch.n_nodes == 4 * 125


# ---------------------------------------------------------------------------
# preloader plugins
# ---------------------------------------------------------------------------

def test_reader_source_bulk_and_scalar_paths_agree():
    # CFF has a bulk chunk read; it must deliver byte-identical blobs to
    # the per-sample path.
    def main(ctx):
        vfs = ctx.world.vfs
        gen = MoleculeGenerator(12, seed=3)
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=3)
        yield from ctx.comm.barrier()
        reader = CFFReader(vfs, "c", ctx.world.machine)
        src = ReaderSource(reader)
        bulk = yield from src.load_chunk(range(3, 9), ctx.node_index, ctx.engine)
        scalar = yield from src.load_chunk([3, 4, 5, 6, 7, 8][::-1], ctx.node_index, ctx.engine)
        return bulk, scalar

    bulk, scalar = run(main).results[0]
    assert np.array_equal(np.sort(bulk.sizes), np.sort(scalar.sizes))
    # Same total content (order differs: scalar path was reversed).
    assert bulk.buffer.sum() == scalar.buffer.sum()
    assert bulk.buffer.size == scalar.buffer.size


def test_generator_source_packs_expected_sizes():
    def main(ctx):
        gen = IsingGenerator(8, seed=0)
        src = GeneratorSource(gen, ctx.world.machine)
        res = yield from src.load_chunk([0, 1, 2], ctx.node_index, ctx.engine)
        return res, len(pack_graph(gen.make(0)))

    res, expected = run(main).results[0]
    assert res.sizes.shape == (3,)
    assert np.all(res.sizes == expected)
    assert res.buffer.size == 3 * expected


def test_empty_chunk_preload():
    def main(ctx):
        src = GeneratorSource(IsingGenerator(8, seed=0), ctx.world.machine)
        res = yield from src.load_chunk([], ctx.node_index, ctx.engine)
        return res.buffer.size, res.sizes.size

    assert run(main).results[0] == (0, 0)
