"""Epoch-ahead scheduler: depth-k windows, budgets, waves, Belady cache."""

import numpy as np
import pytest

from repro.core import DataPlaneOptions, DDStore, GeneratorSource
from repro.dataplane import EpochScheduler, SampleCache
from repro.graphs import IsingGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world
from repro.sim import Engine


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def _source(ctx, n=32, seed=0):
    return GeneratorSource(IsingGenerator(n, seed=seed), ctx.world.machine)


# ---------------------------------------------------------------------------
# scheduler window mechanics (stub loader on a bare engine)
# ---------------------------------------------------------------------------


class _StubDataset:
    def __init__(self, bytes_per_sample=100):
        self.bytes_per_sample = bytes_per_sample

    def estimate_nbytes(self, indices):
        return self.bytes_per_sample * len(indices)


class _StubLoader:
    """Loader double: records when each batch's load coroutine starts."""

    def __init__(self, engine, load_time=0.01):
        self.engine = engine
        self.load_time = load_time
        self.dataset = _StubDataset()
        self.launches: list[tuple[tuple, float]] = []

    def load(self, idx):
        self.launches.append((tuple(idx), self.engine.now))
        yield self.engine.timeout(self.load_time)
        return tuple(idx)


def _drive(engine, sched, n, compute=0.05):
    """Trainer-loop double following the scheduler protocol."""
    consumed = []

    def loop():
        sched.start()
        for step in range(n):
            yield sched.event(step)
            consumed.append((step, engine.now))
            sched.advance(step)
            yield engine.timeout(compute)

    engine.process(loop(), name="trainer")
    engine.run()
    return consumed


def test_depth1_launches_one_batch_ahead():
    """Depth 1 reproduces the seed pipeline: batch k+1's load starts at
    the instant batch k is consumed, never earlier."""
    engine = Engine()
    loader = _StubLoader(engine)
    batches = [np.array([i]) for i in range(4)]
    sched = EpochScheduler(loader, batches, engine=engine)
    consumed = _drive(engine, sched, len(batches))

    assert [b for b, _t in loader.launches] == [(0,), (1,), (2,), (3,)]
    assert loader.launches[0][1] == 0.0
    for k in range(3):
        assert loader.launches[k + 1][1] == consumed[k][1]


def test_depth4_launches_initial_window_immediately():
    engine = Engine()
    loader = _StubLoader(engine)
    batches = [np.array([i]) for i in range(6)]
    opts = DataPlaneOptions(prefetch_depth=4)
    sched = EpochScheduler(loader, batches, engine=engine, options=opts)
    _drive(engine, sched, len(batches))

    t0_launches = [b for b, t in loader.launches if t == 0.0]
    assert t0_launches == [(0,), (1,), (2,), (3,)]


def test_budget_gates_launches_beyond_head_of_line():
    """With a budget below two batches' bytes, only the head-of-line
    batch is in flight; deeper launches wait for capacity."""
    engine = Engine()
    loader = _StubLoader(engine)  # 100 bytes per one-sample batch
    batches = [np.array([i]) for i in range(4)]
    opts = DataPlaneOptions(prefetch_depth=4, prefetch_budget_bytes=150)
    sched = EpochScheduler(loader, batches, engine=engine, options=opts)
    consumed = _drive(engine, sched, len(batches))

    # One launch at t=0 (the head), each next launch only at consume time.
    assert [t for _b, t in loader.launches][:1] == [0.0]
    for k in range(3):
        assert loader.launches[k + 1][1] == consumed[k][1]


def test_generous_budget_does_not_gate():
    engine = Engine()
    loader = _StubLoader(engine)
    batches = [np.array([i]) for i in range(4)]
    opts = DataPlaneOptions(prefetch_depth=4, prefetch_budget_bytes=10_000)
    sched = EpochScheduler(loader, batches, engine=engine, options=opts)
    _drive(engine, sched, len(batches))
    assert sum(1 for _b, t in loader.launches if t == 0.0) == 4


# ---------------------------------------------------------------------------
# Belady (farthest-reuse) eviction
# ---------------------------------------------------------------------------


def test_belady_evicts_farthest_reuse_lru_evicts_oldest():
    pay = np.zeros(8, dtype=np.uint8)
    lru = SampleCache(16, policy="lru")
    bel = SampleCache(16, policy="belady")
    bel.set_future([7, 5, 9, 5])  # 7 used at 0, 5 at 1 and 3, 9 at 2

    for c in (lru, bel):
        c.put(5, pay)
        c.put(7, pay)

    bel.advance_to(1)  # access 0 (key 7's only use) is in the past
    for c in (lru, bel):
        c.put(9, pay)

    assert 5 not in lru and 7 in lru  # oldest insertion evicted
    assert 7 not in bel and 5 in bel  # consumed entry evicted first


def test_belady_prefers_never_used_then_farthest():
    pay = np.zeros(8, dtype=np.uint8)
    c = SampleCache(16, policy="belady")
    c.set_future([1, 2, 1])  # key 3 never appears
    c.put(3, pay)
    c.put(1, pay)
    c.put(2, pay)  # evicts 3 (no future use), not 1 (used at 0 and 2)
    assert 3 not in c and 1 in c and 2 in c


def test_belady_without_future_degrades_to_lru():
    pay = np.zeros(8, dtype=np.uint8)
    c = SampleCache(16, policy="belady")
    c.put(1, pay)
    c.put(2, pay)
    c.put(3, pay)
    assert 1 not in c and 2 in c and 3 in c


def test_cache_rejects_unknown_policy():
    with pytest.raises(ValueError, match="policy"):
        SampleCache(16, policy="clairvoyant")


def test_scheduler_requires_cache_for_waves():
    with pytest.raises(ValueError, match="cache_bytes"):
        DataPlaneOptions(scheduler=True)


# ---------------------------------------------------------------------------
# wave prefetch through a real store
# ---------------------------------------------------------------------------


def test_prefetch_wave_cross_batch_dedup_and_counters():
    """An index repeated across two scheduled batches is fetched once;
    the demand loads then hit the cache for both destinations, and the
    FetchStats counters agree on every axis."""

    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _source(ctx),
            dataplane=DataPlaneOptions(
                cache_bytes=1 << 20, scheduler=True, prefetch_depth=2
            ),
        )
        lo, hi = store.local_range
        a = [hi % 32, (hi + 1) % 32]
        b = [(hi + 1) % 32, (hi + 2) % 32]  # (hi+1) appears in both batches
        n = yield from store.prefetch_wave([a, b])
        ga = yield from store.get_samples(a)
        gb = yield from store.get_samples(b)
        return n, store.stats, [g.sample_id for g in ga], [g.sample_id for g in gb]

    job = run(main)
    for n, stats, ids_a, ids_b in job.results:
        # 4 requested slots, 3 distinct remote samples: the duplicate is
        # fetched exactly once.
        assert n == 3
        assert stats.n_prefetched == 3
        assert stats.n_prefetch_waves == 1
        # Three contiguous samples from one owner coalesce into one read.
        assert stats.n_get_calls == 1
        # Every demand fetch (both scatter destinations of the duplicate
        # included) became a cache hit; no remote demand traffic at all.
        assert stats.n_remote == 0
        assert stats.n_cache_hits == 4
        assert stats.bytes_transferred == stats.bytes_prefetched > 0
        # The payloads are the right samples, in request order.
        lo_next = (ids_a[0] // 8) * 8
        assert ids_a == [lo_next % 32, (lo_next + 1) % 32]
        assert ids_b == [(lo_next + 1) % 32, (lo_next + 2) % 32]


def test_prefetch_wave_skips_cached_and_local():
    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _source(ctx),
            dataplane=DataPlaneOptions(
                cache_bytes=1 << 20, scheduler=True, prefetch_depth=2
            ),
        )
        lo, hi = store.local_range
        remote = [hi % 32, (hi + 1) % 32]
        n1 = yield from store.prefetch_wave([remote])
        # Second wave over the same ids plus local ones: nothing to fetch.
        n2 = yield from store.prefetch_wave([remote, [lo, lo + 1]])
        return n1, n2, store.stats.n_prefetch_waves

    job = run(main)
    for n1, n2, waves in job.results:
        assert n1 == 2
        assert n2 == 0
        assert waves == 1  # the empty wave is not counted


def test_wave_scheduled_training_is_deterministic():
    """Two fresh simulations of a wave-scheduled config agree exactly."""
    from repro.bench.harness import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(
        machine="perlmutter",
        n_nodes=2,
        dataset="ising",
        batch_size=8,
        steps_per_epoch=3,
        epochs=2,
        prefetch_depth=4,
        scheduler=True,
        cache_bytes=1 << 22,
        cache_policy="belady",
    )
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.elapsed == b.elapsed
    assert a.data_wait == b.data_wait
    assert a.overlap_efficiency == b.overlap_efficiency
    assert a.fetch_counters == b.fetch_counters
