"""Tests for benchmark-internal helpers (sweep values, staging, profiles)."""

import numpy as np
import pytest

from repro.bench.experiments import (
    _PROFILES,
    _width_sweep_values,
    current_profile,
)
from repro.bench.harness import (
    ExperimentConfig,
    _logical_scale,
    _stage_cff,
    _stage_pff,
    packed_blobs,
    run_experiment,
)
from repro.hardware import ParallelFileSystem, TESTBOX
from repro.sim import Engine
from repro.storage import CFFReader, PFFReader, VirtualFS


def test_width_sweep_values_divide_rank_count():
    for ranks in (8, 48, 64, 96, 256):
        widths = _width_sweep_values(ranks)
        assert widths, ranks
        assert all(ranks % w == 0 for w in widths)
        assert ranks in widths
        assert widths == sorted(widths)


def test_profiles_well_formed():
    for name, p in _PROFILES.items():
        assert p.name == name
        assert p.batch_size >= 1
        assert len(p.scaling_nodes) >= 2
        assert p.convergence_epochs >= 1


def test_current_profile_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "tiny")
    assert current_profile().name == "tiny"
    monkeypatch.setenv("REPRO_BENCH_SCALE", "bogus")
    with pytest.raises(KeyError):
        current_profile()
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    assert current_profile().name == "small"


def test_stage_helpers_roundtrip_readers():
    vfs = VirtualFS(ParallelFileSystem(Engine(), TESTBOX.pfs, 1))
    blobs = packed_blobs("ising", 0, 6)
    _stage_pff(vfs, "p", blobs)
    _stage_cff(vfs, "c", blobs, n_subfiles=2, logical_scale=2.0)
    pff = PFFReader(vfs, "p", 6, TESTBOX)
    cff = CFFReader(vfs, "c", TESTBOX)
    for i in (0, 3, 5):
        a, _ = pff.read_sample_raw(i, 0, 0.0)
        b, _ = cff.read_sample_raw(i, 0, 0.0)
        assert a == b == blobs[i]


def test_logical_scale_targets_paper_bytes():
    blobs = packed_blobs("aisd", 0, 8)
    cfg = ExperimentConfig(machine="perlmutter", n_nodes=1, dataset="aisd",
                           batch_size=2, steps_per_epoch=1)
    scale = _logical_scale(cfg, blobs)
    actual = sum(len(b) for b in blobs)
    assert scale * actual == pytest.approx(60e9, rel=1e-6)  # paper CFF bytes


def test_nvme_method_requires_hardware():
    # Perlmutter has no node-local NVMe in our model.
    cfg = ExperimentConfig(
        machine="perlmutter", n_nodes=1, dataset="ising", method="nvme",
        batch_size=2, steps_per_epoch=1,
    )
    with pytest.raises(ValueError, match="no node-local NVMe"):
        run_experiment(cfg)


def test_nvme_method_works_on_summit():
    cfg = ExperimentConfig(
        machine="summit", n_nodes=1, dataset="ising", method="nvme",
        batch_size=2, steps_per_epoch=1,
    )
    r = run_experiment(cfg)
    assert r.throughput > 0
    assert np.all(r.latencies > 0)
