"""Tests for graph structures, collation, and dataset generators."""

import numpy as np
import pytest

from repro.graphs import (
    AtomicGraph,
    DATASETS,
    GraphStats,
    IsingGenerator,
    MoleculeGenerator,
    SpectrumGenerator,
    collate,
    compute_stats,
    ising_energy,
    make_generator,
)
from repro.graphs.ising import _lattice_topology


def _tiny_graph(n=4, out_dim=2, sample_id=7):
    rng = np.random.default_rng(0)
    edges = np.array([[0, 1, 2, 3], [1, 2, 3, 0]])
    return AtomicGraph(
        positions=rng.normal(size=(n, 3)),
        node_features=rng.normal(size=(n, 5)),
        edge_index=edges,
        y=np.arange(out_dim, dtype=np.float32),
        sample_id=sample_id,
    )


# ---------------------------------------------------------------------------
# AtomicGraph
# ---------------------------------------------------------------------------

def test_graph_shapes_and_dtypes():
    g = _tiny_graph()
    assert g.n_nodes == 4 and g.n_edges == 4
    assert g.positions.dtype == np.float32
    assert g.edge_index.dtype == np.int32
    assert g.y.dtype == np.float32
    assert g.nbytes == g.positions.nbytes + g.node_features.nbytes + g.edge_index.nbytes + g.y.nbytes


def test_graph_validation_rejects_bad_edges():
    with pytest.raises(ValueError, match="nonexistent"):
        AtomicGraph(
            positions=np.zeros((2, 3)),
            node_features=np.zeros((2, 1)),
            edge_index=np.array([[0], [5]]),
            y=np.array([1.0]),
        )


def test_graph_validation_rejects_empty():
    with pytest.raises(ValueError):
        AtomicGraph(
            positions=np.zeros((0, 3)),
            node_features=np.zeros((0, 1)),
            edge_index=np.zeros((2, 0)),
            y=np.array([1.0]),
        )


def test_graph_validation_feature_mismatch():
    with pytest.raises(ValueError, match="node_features"):
        AtomicGraph(
            positions=np.zeros((3, 3)),
            node_features=np.zeros((2, 1)),
            edge_index=np.zeros((2, 0)),
            y=np.array([1.0]),
        )


def test_graph_degree():
    g = _tiny_graph()
    assert np.array_equal(g.degree(), np.ones(4, dtype=np.int64))


def test_graph_allclose_detects_difference():
    a, b = _tiny_graph(), _tiny_graph()
    assert a.allclose(b)
    b.y[0] += 1.0
    assert not a.allclose(b)


# ---------------------------------------------------------------------------
# collation
# ---------------------------------------------------------------------------

def test_collate_offsets_edges():
    g1, g2 = _tiny_graph(sample_id=0), _tiny_graph(sample_id=1)
    batch = collate([g1, g2])
    assert batch.n_graphs == 2
    assert batch.n_nodes == 8
    assert batch.n_edges == 8
    # Second graph's edges shifted by 4.
    assert batch.edge_index[:, 4:].min() >= 4
    assert np.array_equal(batch.ptr, [0, 4, 8])
    assert np.array_equal(batch.node_graph, [0] * 4 + [1] * 4)


def test_collate_roundtrip_graph():
    g1, g2 = _tiny_graph(sample_id=0), _tiny_graph(sample_id=1)
    batch = collate([g1, g2])
    back = batch.graph(1)
    assert back.allclose(g2)


def test_collate_rejects_empty_and_mixed():
    with pytest.raises(ValueError):
        collate([])
    g1 = _tiny_graph(out_dim=2)
    g2 = _tiny_graph(out_dim=3)
    with pytest.raises(ValueError, match="inconsistent"):
        collate([g1, g2])


# ---------------------------------------------------------------------------
# Ising
# ---------------------------------------------------------------------------

def test_ising_lattice_counts_match_paper_shape():
    gen = IsingGenerator(10)
    g = gen.make(0)
    assert g.n_nodes == 125  # 5^3 atoms per configuration, as in the paper
    assert g.n_edges == 600  # 2 x 300 nearest-neighbour pairs, directed
    assert g.output_dim == 1
    assert np.all(np.abs(g.node_features) == 1.0)  # spins +-1
    assert g.positions.min() == 0.0 and g.positions.max() == 1.0  # unit cube


def test_ising_deterministic_per_index():
    a = IsingGenerator(10, seed=3).make(4)
    b = IsingGenerator(10, seed=3).make(4)
    assert a.allclose(b)
    c = IsingGenerator(10, seed=4).make(4)
    assert not a.allclose(c)


def test_ising_energy_ground_state():
    _pos, _ei, pairs = _lattice_topology(3)
    spins = np.ones(27, dtype=np.float32)
    e = ising_energy(spins, pairs, J=1.0, H=0.0)
    assert e == -pairs.shape[0]  # all-aligned ferromagnet minimises energy


def test_ising_energy_field_term():
    _pos, _ei, pairs = _lattice_topology(3)
    spins = np.ones(27, dtype=np.float32)
    e = ising_energy(spins, pairs, J=0.0, H=1.0)
    assert e == -27.0


def test_ising_out_of_range_index():
    gen = IsingGenerator(5)
    with pytest.raises(IndexError):
        gen.make(5)


# ---------------------------------------------------------------------------
# Molecules
# ---------------------------------------------------------------------------

def test_molecule_sizes_in_paper_band():
    gen = MoleculeGenerator(300, seed=0)
    sizes = [gen.make(i).n_nodes for i in range(300)]
    assert min(sizes) >= 5
    assert max(sizes) <= 71
    assert 45 <= float(np.mean(sizes)) <= 60  # paper mean ~52


def test_molecule_edges_roughly_twice_nodes():
    gen = MoleculeGenerator(100, seed=1)
    stats = compute_stats(gen, 100)
    ratio = stats.mean_edges / stats.mean_nodes
    assert 1.8 <= ratio <= 2.6  # paper: 1.1B / 550.6M = 2.0


def test_molecule_connected_skeleton():
    import networkx as nx

    g = MoleculeGenerator(10, seed=2).make(3)
    nxg = nx.Graph()
    nxg.add_nodes_from(range(g.n_nodes))
    nxg.add_edges_from(g.edge_index.T.tolist())
    assert nx.is_connected(nxg)


def test_molecule_gap_positive_and_learnable_signal():
    gen = MoleculeGenerator(200, seed=0)
    gaps = np.array([gen.make(i).y[0] for i in range(200)])
    sizes = np.array([gen.make(i).n_nodes for i in range(200)])
    assert np.all(gaps > 0)
    # Gap must anti-correlate with size (physical trend the GNN learns).
    corr = np.corrcoef(gaps, sizes)[0, 1]
    assert corr < -0.5


def test_molecule_determinism():
    a = MoleculeGenerator(10, seed=9).make(7)
    b = MoleculeGenerator(10, seed=9).make(7)
    assert a.allclose(b)


# ---------------------------------------------------------------------------
# Spectra
# ---------------------------------------------------------------------------

def test_spectrum_discrete_dims():
    gen = SpectrumGenerator(10, mode="discrete", seed=0)
    g = gen.make(0)
    assert g.output_dim == 100
    peaks = g.y[:50]
    assert np.all(np.diff(peaks) >= 0)  # sorted energies
    assert peaks.min() >= 1.0 and peaks.max() <= 8.0


def test_spectrum_smooth_dims_and_nonnegative():
    gen = SpectrumGenerator(5, mode="smooth", grid_size=351, seed=0)
    g = gen.make(0)
    assert g.output_dim == 351
    assert np.all(g.y >= 0)
    assert g.y.max() > 0


def test_spectrum_same_molecule_underneath():
    mols = MoleculeGenerator(5, seed=11)
    spec = SpectrumGenerator(5, mode="discrete", seed=11)
    m, s = mols.make(2), spec.make(2)
    assert np.array_equal(m.edge_index, s.edge_index)
    assert np.allclose(m.node_features, s.node_features)


def test_spectrum_rejects_bad_mode():
    with pytest.raises(ValueError):
        SpectrumGenerator(5, mode="fourier")


def test_smooth_bytes_dominated_by_target():
    small = SpectrumGenerator(3, mode="smooth", grid_size=351, seed=0).make(0)
    big = SpectrumGenerator(3, mode="smooth", grid_size=37500, seed=0).make(0)
    assert big.nbytes > 20 * small.nbytes  # paper: smooth ~20x discrete files


# ---------------------------------------------------------------------------
# registry / stats
# ---------------------------------------------------------------------------

def test_registry_has_all_paper_datasets():
    assert set(DATASETS) == {
        "ising",
        "aisd",
        "aisd-ex-discrete",
        "aisd-ex-smooth",
        "aisd-ex-smooth-small",
    }


def test_make_generator_and_unknown_key():
    gen = make_generator("ising", 4)
    assert len(gen) == 4
    with pytest.raises(KeyError, match="unknown dataset"):
        make_generator("qm9", 4)


def test_compute_stats_counts():
    gen = IsingGenerator(6)
    stats = compute_stats(gen)
    assert stats.n_graphs == 6
    assert stats.mean_nodes == 125
    assert stats.min_nodes == stats.max_nodes == 125
    assert stats.total_bytes == 6 * gen.make(0).nbytes


def test_stats_accumulator_empty():
    s = GraphStats()
    assert s.mean_nodes == 0.0 and s.mean_bytes == 0.0
