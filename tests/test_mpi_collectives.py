"""Tests for simulated MPI collectives (bcast/gather/allreduce/split/...)."""

import numpy as np
import pytest

from repro.hardware import TESTBOX
from repro.mpi import CollectiveMismatch, MPIError, run_world


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def test_barrier_synchronises_ranks():
    def main(ctx):
        yield ctx.engine.timeout(float(ctx.rank))  # stagger arrivals
        yield from ctx.comm.barrier()
        return ctx.now

    job = run(main)
    times = job.results
    # Everyone leaves the barrier together, after the slowest arrival.
    assert max(times) - min(times) < 1e-9
    assert min(times) >= 3.0  # slowest rank arrived at t=3


def test_bcast_from_root():
    def main(ctx):
        data = {"w": np.ones(3)} if ctx.rank == 2 else None
        out = yield from ctx.comm.bcast(data, root=2)
        return out["w"].sum()

    job = run(main)
    assert job.results == [3.0] * 4


def test_bcast_none_payload_is_legal():
    def main(ctx):
        out = yield from ctx.comm.bcast(None if ctx.rank != 0 else None, root=0)
        return out

    job = run(main)
    assert job.results == [None] * 4


def test_gather_collects_in_rank_order():
    def main(ctx):
        out = yield from ctx.comm.gather(ctx.rank * 2, root=1)
        return out

    job = run(main)
    assert job.results[1] == [0, 2, 4, 6]
    assert job.results[0] is None


def test_allgather_everyone_gets_everything():
    def main(ctx):
        out = yield from ctx.comm.allgather(chr(ord("a") + ctx.rank))
        return "".join(out)

    job = run(main)
    assert job.results == ["abcd"] * 4


def test_scatter_distributes_root_list():
    def main(ctx):
        data = [10, 11, 12, 13] if ctx.rank == 0 else None
        out = yield from ctx.comm.scatter(data, root=0)
        return out

    job = run(main)
    assert job.results == [10, 11, 12, 13]


def test_scatter_wrong_length_raises():
    def main(ctx):
        data = [1, 2] if ctx.rank == 0 else None
        yield from ctx.comm.scatter(data, root=0)

    with pytest.raises(MPIError, match="scatter payload"):
        run(main)


def test_allreduce_sum_scalars():
    def main(ctx):
        out = yield from ctx.comm.allreduce(ctx.rank + 1, op="sum")
        return out

    job = run(main)
    assert job.results == [10] * 4  # 1+2+3+4


def test_allreduce_numpy_mean_of_gradients():
    def main(ctx):
        grad = np.full(5, float(ctx.rank))
        total = yield from ctx.comm.allreduce(grad, op="sum")
        return total / ctx.size

    job = run(main)
    for r in job.results:
        assert np.allclose(r, 1.5)


def test_allreduce_does_not_mutate_input():
    def main(ctx):
        grad = np.full(4, float(ctx.rank))
        yield from ctx.comm.allreduce(grad, op="sum")
        return grad.copy()

    job = run(main)
    for rank, g in enumerate(job.results):
        assert np.allclose(g, rank)


def test_allreduce_min_max():
    def main(ctx):
        lo = yield from ctx.comm.allreduce(ctx.rank, op="min")
        hi = yield from ctx.comm.allreduce(ctx.rank, op="max")
        return (lo, hi)

    job = run(main)
    assert job.results == [(0, 3)] * 4


def test_reduce_only_root_gets_result():
    def main(ctx):
        out = yield from ctx.comm.reduce(ctx.rank, op="sum", root=3)
        return out

    job = run(main)
    assert job.results == [None, None, None, 6]


def test_alltoall_transpose():
    def main(ctx):
        out = yield from ctx.comm.alltoall([f"{ctx.rank}->{d}" for d in range(ctx.size)])
        return out

    job = run(main)
    assert job.results[2] == ["0->2", "1->2", "2->2", "3->2"]


def test_split_into_groups():
    def main(ctx):
        sub = yield from ctx.comm.split(color=ctx.rank % 2, key=ctx.rank)
        members = yield from sub.allgather(ctx.rank)
        return (sub.rank, sub.size, members)

    job = run(main)
    assert job.results[0] == (0, 2, [0, 2])
    assert job.results[1] == (0, 2, [1, 3])
    assert job.results[2] == (1, 2, [0, 2])
    assert job.results[3] == (1, 2, [1, 3])


def test_split_color_none_excluded():
    def main(ctx):
        sub = yield from ctx.comm.split(color=None if ctx.rank == 0 else 7)
        if sub is None:
            return "excluded"
        return sub.size

    job = run(main)
    assert job.results == ["excluded", 3, 3, 3]


def test_dup_preserves_rank_order():
    def main(ctx):
        sub = yield from ctx.comm.dup()
        return (sub.rank, sub.size)

    job = run(main)
    assert job.results == [(r, 4) for r in range(4)]


def test_mismatched_collectives_raise():
    def main(ctx):
        if ctx.rank == 0:
            yield from ctx.comm.barrier()
        else:
            yield from ctx.comm.allreduce(1)

    with pytest.raises(CollectiveMismatch):
        run(main)


def test_collective_time_nonzero_and_scales():
    def main(ctx):
        t0 = ctx.now
        yield from ctx.comm.allreduce(np.zeros(1 << 20))
        return ctx.now - t0

    small = run(main, n_nodes=1).results
    big = run(main, n_nodes=8).results
    assert min(small) > 0
    assert max(big) > max(small)


def test_collective_stats_accounted():
    def main(ctx):
        yield from ctx.comm.allreduce(np.zeros(1024))
        yield from ctx.comm.barrier()
        return None

    job = run(main)
    st = job.world.stats[0]
    assert st.count_by_call["MPI_Allreduce"] == 1
    assert st.count_by_call["MPI_Barrier"] == 1
    assert st.time_by_call["MPI_Allreduce"] > 0
