"""Data-plane layer tests: planner coalescing, sample cache, transport
registry, and the DDStore integration (seed-parity counters, cache hits,
per-stage instrumentation)."""

import numpy as np
import pytest

from repro.core import DataPlaneOptions, DDStore, DDStoreConfig, GeneratorSource
from repro.dataplane import (
    FetchPlanner,
    RmaTransport,
    SampleCache,
    available_frameworks,
    get_transport,
    register_transport,
    unregister_transport,
)
from repro.graphs import IsingGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def _source(ctx, n=32, seed=0):
    return GeneratorSource(IsingGenerator(n, seed=seed), ctx.world.machine)


# ---------------------------------------------------------------------------
# FetchPlanner
# ---------------------------------------------------------------------------

def test_planner_merges_adjacent_ranges():
    plan = FetchPlanner().plan(targets=[1, 1, 1], offsets=[0, 10, 20], sizes=[10, 10, 10])
    assert plan.n_reads == 1
    read = plan.reads[0]
    assert read.request == (1, 0, 30)
    assert [s.position for s in read.slices] == [0, 1, 2]
    assert [(s.read_offset, s.nbytes) for s in read.slices] == [(0, 10), (10, 10), (20, 10)]


def test_planner_keeps_gapped_ranges_separate():
    plan = FetchPlanner().plan(targets=[1, 1], offsets=[0, 100], sizes=[10, 10])
    assert plan.n_reads == 2
    assert plan.reads[0].request == (1, 0, 10)
    assert plan.reads[1].request == (1, 100, 10)


def test_planner_groups_per_target():
    # Adjacent offsets on *different* targets must not merge.
    plan = FetchPlanner().plan(targets=[1, 2, 1], offsets=[0, 10, 10], sizes=[10, 10, 10])
    assert plan.n_reads == 2
    assert plan.targets == (1, 2)
    by_target = {r.target: r for r in plan.reads}
    assert by_target[1].nbytes == 20  # positions 0 and 2 merged
    assert by_target[2].nbytes == 10


def test_planner_deduplicates_overlapping_requests():
    # The same sample requested twice moves its bytes once.
    plan = FetchPlanner().plan(targets=[3, 3], offsets=[40, 40], sizes=[8, 8])
    assert plan.n_reads == 1
    assert plan.total_bytes == 8
    assert sorted(s.position for s in plan.reads[0].slices) == [0, 1]


def test_planner_splits_oversized_spans():
    plan = FetchPlanner(max_read_bytes=16).plan(
        targets=[0, 0], offsets=[0, 16], sizes=[16, 16]
    )
    assert plan.n_reads == 2
    assert all(r.nbytes == 16 for r in plan.reads)
    # One single sample bigger than the cap is also split...
    plan = FetchPlanner(max_read_bytes=10).plan(targets=[0], offsets=[0], sizes=[25])
    assert [r.nbytes for r in plan.reads] == [10, 10, 5]
    # ...and its scatter records reassemble the full payload.
    covered = sorted(
        (s.sample_offset, s.sample_offset + s.nbytes)
        for r in plan.reads
        for s in r.slices
    )
    assert covered == [(0, 10), (10, 20), (20, 25)]
    assert plan.total_bytes == 25


def test_planner_coalesce_off_is_one_read_per_request():
    plan = FetchPlanner(coalesce=False).plan(
        targets=[1, 1, 2], offsets=[10, 0, 5], sizes=[4, 10, 6]
    )
    # Request order preserved, nothing merged.
    assert [r.request for r in plan.reads] == [(1, 10, 4), (1, 0, 10), (2, 5, 6)]
    assert all(len(r.slices) == 1 and r.slices[0].position == i
               for i, r in enumerate(plan.reads))


def test_planner_positions_label_slices():
    plan = FetchPlanner().plan(
        targets=[1, 1], offsets=[0, 10], sizes=[10, 10], positions=[7, 3]
    )
    assert sorted(s.position for s in plan.reads[0].slices) == [3, 7]


def test_planner_partially_overlapping_ranges_merge_once():
    # Two samples sharing bytes [5, 10): the wire moves [0, 15) once and
    # each sample scatters from its own offset within the merged read.
    plan = FetchPlanner().plan(targets=[1, 1], offsets=[0, 5], sizes=[10, 10])
    assert plan.n_reads == 1
    assert plan.reads[0].request == (1, 0, 15)
    assert plan.total_bytes == 15
    slices = sorted(plan.reads[0].slices, key=lambda s: s.position)
    assert [(s.read_offset, s.nbytes) for s in slices] == [(0, 10), (5, 10)]


def test_planner_zero_length_blob():
    # A zero-byte sample still gets a (degenerate) read so its position is
    # accounted for, but moves nothing on the wire.
    plan = FetchPlanner().plan(targets=[1], offsets=[0], sizes=[0])
    assert plan.n_reads == 1
    assert plan.reads[0].nbytes == 0
    assert plan.total_bytes == 0
    assert plan.reads[0].slices == ()


def test_planner_sample_spanning_many_split_reads():
    # One 19-byte sample under a 4-byte read cap: five wire reads whose
    # scatter records tile the sample exactly.
    plan = FetchPlanner(max_read_bytes=4).plan(targets=[0], offsets=[0], sizes=[19])
    assert [r.nbytes for r in plan.reads] == [4, 4, 4, 4, 3]
    covered = sorted(
        (s.sample_offset, s.sample_offset + s.nbytes)
        for r in plan.reads
        for s in r.slices
    )
    assert covered == [(0, 4), (4, 8), (8, 12), (12, 16), (16, 19)]


def test_planner_empty_and_validation():
    assert FetchPlanner().plan([], [], []).n_reads == 0
    with pytest.raises(ValueError, match="equal length"):
        FetchPlanner().plan([1], [0, 1], [4])
    with pytest.raises(ValueError, match="max_read_bytes"):
        FetchPlanner(max_read_bytes=0)


# ---------------------------------------------------------------------------
# SampleCache
# ---------------------------------------------------------------------------

def test_cache_disabled_by_default():
    cache = SampleCache()
    assert not cache.enabled
    assert cache.put(1, np.ones(8, np.uint8)) is False
    assert len(cache) == 0


def test_cache_hit_miss_accounting():
    cache = SampleCache(capacity_bytes=64)
    payload = np.arange(16, dtype=np.uint8)
    assert cache.get(1) is None
    assert cache.put(1, payload) is True
    got = cache.get(1)
    assert got is not None and np.array_equal(got, payload)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_bytes == 16
    assert cache.used_bytes == 16


def test_cache_evicts_lru_under_byte_budget():
    cache = SampleCache(capacity_bytes=32)
    cache.put(1, np.zeros(16, np.uint8))
    cache.put(2, np.zeros(16, np.uint8))
    cache.get(1)  # refresh key 1: key 2 is now least recently used
    cache.put(3, np.zeros(16, np.uint8))
    assert 1 in cache and 3 in cache and 2 not in cache
    assert cache.stats.evictions == 1
    assert cache.stats.evicted_bytes == 16
    assert cache.used_bytes == 32


def test_cache_rejects_oversized_payload():
    cache = SampleCache(capacity_bytes=8)
    assert cache.put(1, np.zeros(9, np.uint8)) is False
    assert len(cache) == 0


def test_cache_accounts_bytes_of_non_uint8_payloads():
    # Regression: put() used to take nbytes from the *input* array but store
    # a value-cast uint8 copy — a float64 payload was billed at 1/8 of what
    # a byte-preserving store needs, and round-tripped with clipped values.
    cache = SampleCache(capacity_bytes=64)
    payload = np.array([0.5, 1e9, -3.25, 7.0], dtype=np.float64)  # 32 bytes
    assert cache.put(1, payload) is True
    assert cache.used_bytes == 32
    got = cache.get(1)
    assert got is not None and got.dtype == np.uint8 and got.nbytes == 32
    assert np.array_equal(got.view(np.float64), payload)


def test_cache_duplicate_put_refreshes_payload():
    # Regression: a duplicate-key put used to double-bill used_bytes while
    # keeping the stale payload.
    cache = SampleCache(capacity_bytes=64)
    cache.put(1, np.zeros(16, np.uint8))
    newer = np.arange(8, dtype=np.uint8)
    assert cache.put(1, newer) is True
    assert np.array_equal(cache.get(1), newer)
    assert cache.used_bytes == 8
    assert len(cache) == 1
    assert cache.stats.insertions == 1  # a refresh is not a new entry


def test_cache_clear_keeps_stats_invariant():
    cache = SampleCache(capacity_bytes=64)
    cache.put(1, np.zeros(16, np.uint8))
    cache.put(2, np.zeros(8, np.uint8))
    cache.clear()
    assert len(cache) == 0 and cache.used_bytes == 0
    assert cache.stats.insertions - cache.stats.evictions == len(cache)
    assert cache.stats.evicted_bytes == 24
    # The cache stays usable after a clear.
    assert cache.put(3, np.zeros(4, np.uint8)) is True
    assert cache.used_bytes == 4


# ---------------------------------------------------------------------------
# transport registry
# ---------------------------------------------------------------------------

def test_registry_rejects_duplicate_and_unknown_names():
    assert "mpi-rma" in available_frameworks()

    class Imposter(RmaTransport):
        name = "mpi-rma"

    with pytest.raises(ValueError, match="already registered"):
        register_transport(Imposter)
    with pytest.raises(KeyError, match="no-such-fabric"):
        get_transport("no-such-fabric")


def test_unknown_framework_error_mentions_framework():
    with pytest.raises(ValueError, match="framework"):
        DDStoreConfig(4, dataplane=DataPlaneOptions(framework="carrier-pigeon"))


def test_third_party_transport_pluggable_without_touching_store():
    """A transport registered in the test is usable via ``DataPlaneOptions``."""

    class TracingRma(RmaTransport):
        name = "tracing-rma"
        fetch_reads: list = []

        def fetch(self, reads, n_streams=1):
            type(self).fetch_reads.append(len(reads))
            out = yield from super().fetch(reads, n_streams=n_streams)
            return out

    register_transport(TracingRma)
    try:
        def main(ctx):
            store = yield from DDStore.create(
                ctx.comm, _source(ctx),
                dataplane=DataPlaneOptions(framework="tracing-rma"),
            )
            assert store.config.dataplane.framework == "tracing-rma"
            lo, hi = store.local_range
            graphs = yield from store.get_samples([(hi + 1) % 32, lo])
            return [g.sample_id for g in graphs]

        job = run(main)
        assert all(len(r) == 2 for r in job.results)
        assert len(TracingRma.fetch_reads) > 0  # the custom fetch path ran
    finally:
        unregister_transport("tracing-rma")
    assert "tracing-rma" not in available_frameworks()


# ---------------------------------------------------------------------------
# DDStore integration: counters, parity, cache, stages
# ---------------------------------------------------------------------------

def _contiguous_remote_fetch(ctx, **create_kw):
    """Fetch the 8 contiguous samples owned by the next rank over."""
    store = yield from DDStore.create(ctx.comm, _source(ctx), **create_kw)
    lo, hi = store.local_range
    remote = [(hi + k) % 32 for k in range(8)]
    graphs = yield from store.get_samples(remote)
    return store.stats, [g.sample_id for g in graphs]


def test_coalescing_reduces_get_calls_for_contiguous_batch():
    job = run(lambda c: _contiguous_remote_fetch(c))
    for stats, _ids in job.results:
        assert stats.n_remote == 8
        # One lock epoch + one merged read instead of 8 gets.
        assert stats.n_get_calls < stats.n_remote
        assert stats.n_get_calls == 1
        # Adjacent (non-overlapping) ranges: wire bytes == logical bytes.
        assert stats.bytes_transferred == stats.bytes_remote


def test_coalesce_off_matches_one_get_per_sample():
    job = run(lambda c: _contiguous_remote_fetch(
        c, dataplane=DataPlaneOptions(coalesce=False)))
    for stats, _ids in job.results:
        assert stats.n_get_calls == stats.n_remote == 8


def test_default_config_preserves_seed_counters():
    """Cache off + coalescing on must not change what was fetched."""
    on = run(lambda c: _contiguous_remote_fetch(c)).results
    off = run(lambda c: _contiguous_remote_fetch(
        c, dataplane=DataPlaneOptions(coalesce=False))).results
    for (s_on, ids_on), (s_off, ids_off) in zip(on, off):
        assert ids_on == ids_off
        assert s_on.n_local == s_off.n_local == 0
        assert s_on.n_remote == s_off.n_remote
        assert s_on.bytes_remote == s_off.bytes_remote
        assert s_on.n_cache_hits == s_off.n_cache_hits == 0
        assert s_on.n_total == s_off.n_total == 8


def test_coalesced_fetch_returns_identical_graphs():
    gen = IsingGenerator(32, seed=0)

    def main(ctx, coalesce):
        store = yield from DDStore.create(
            ctx.comm, _source(ctx), dataplane=DataPlaneOptions(coalesce=coalesce)
        )
        order = [31, 0, 16, 5, 5, 9, 10, 11]
        graphs = yield from store.get_samples(order)
        return graphs

    a = run(lambda c: main(c, True)).results[0]
    b = run(lambda c: main(c, False)).results[0]
    for ga, gb, want in zip(a, b, [31, 0, 16, 5, 5, 9, 10, 11]):
        assert ga.sample_id == gb.sample_id == want
        assert ga.allclose(gen.make(want))


def test_sample_cache_serves_repeat_fetches():
    gen = IsingGenerator(32, seed=0)

    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm, _source(ctx), dataplane=DataPlaneOptions(cache_bytes=1 << 20)
        )
        lo, hi = store.local_range
        remote = [(hi + k) % 32 for k in range(8)]
        first = yield from store.get_samples(remote)
        after_first = (store.stats.n_remote, store.stats.n_cache_hits)
        second = yield from store.get_samples(remote)
        after_second = (store.stats.n_remote, store.stats.n_cache_hits)
        return remote, first, second, after_first, after_second

    job = run(main)
    for remote, first, second, (rem1, hits1), (rem2, hits2) in job.results:
        assert (rem1, hits1) == (8, 0)
        assert rem2 == 8  # the second pass went to the cache, not the wire
        assert hits2 == 8
        for g1, g2, want in zip(first, second, remote):
            assert g1.sample_id == g2.sample_id == want
            assert g1.allclose(gen.make(want))


def test_cache_disabled_takes_no_hits():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        lo, hi = store.local_range
        remote = [(hi + k) % 32 for k in range(4)]
        yield from store.get_samples(remote)
        yield from store.get_samples(remote)
        return store.stats.n_remote, store.stats.n_cache_hits, len(store.cache)

    job = run(main)
    for n_remote, hits, cached in job.results:
        assert (n_remote, hits, cached) == (8, 0, 0)


def test_max_read_bytes_splits_wire_reads():
    def main(ctx):
        # 8 KiB holds the largest Ising sample (~6.8 KiB) but not a merged
        # 8-sample span, so coalesced reads split on the wire.
        store = yield from DDStore.create(
            ctx.comm, _source(ctx), dataplane=DataPlaneOptions(max_read_bytes=8192)
        )
        lo, hi = store.local_range
        remote = [(hi + k) % 32 for k in range(8)]
        graphs = yield from store.get_samples(remote)
        return store.stats, [g.sample_id for g in graphs]

    job = run(main)
    for stats, ids in job.results:
        assert len(ids) == 8
        assert stats.n_get_calls > 1  # the merged span exceeds 8 KiB
        assert stats.bytes_transferred == stats.bytes_remote


def test_fetch_stage_seconds_recorded():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        lo, hi = store.local_range
        mixed = [lo, (hi + 1) % 32, (hi + 2) % 32]
        yield from store.get_samples(mixed)
        return dict(store.stats.stage_seconds)

    job = run(main)
    for stages in job.results:
        for stage in ("plan", "get", "copy", "decode"):
            assert stages.get(stage, 0.0) > 0.0
        # An intra-node shared lock can be free in virtual time; when it
        # does cost anything, it must be accounted under "lock".
        assert stages.get("lock", 0.0) >= 0.0
        assert "cache" not in stages  # cache disabled -> no cache stage


def test_reshard_with_cache_and_coalescing():
    gen = IsingGenerator(32, seed=0)

    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm, _source(ctx), dataplane=DataPlaneOptions(cache_bytes=1 << 20)
        )
        store2 = yield from store.reshard(width=2)
        assert store2.config.dataplane.cache_bytes == 1 << 20
        graphs = yield from store2.get_samples([30, 3])
        return graphs

    job = run(main)
    for graphs in job.results:
        assert graphs[0].allclose(gen.make(30))
        assert graphs[1].allclose(gen.make(3))


# ---------------------------------------------------------------------------
# up-front config validation
# ---------------------------------------------------------------------------

def test_width_error_lists_valid_divisors():
    with pytest.raises(ValueError, match=r"must divide") as exc:
        DDStoreConfig(8, width=3)
    assert "[1, 2, 4, 8]" in str(exc.value)


def test_cache_bytes_validated():
    with pytest.raises(ValueError, match="cache_bytes"):
        DDStoreConfig(4, dataplane=DataPlaneOptions(cache_bytes=-1))
    with pytest.raises(ValueError, match="max_read_bytes"):
        DDStoreConfig(4, dataplane=DataPlaneOptions(max_read_bytes=0))


def test_experiment_config_validates_width_up_front():
    from repro.bench import ExperimentConfig

    with pytest.raises(ValueError, match="must divide"):
        ExperimentConfig(
            machine="perlmutter", n_nodes=2, method="ddstore", width=3
        )
    with pytest.raises(ValueError, match="cache_bytes"):
        ExperimentConfig(
            machine="perlmutter", n_nodes=2, method="ddstore", cache_bytes=-5
        )


def test_plan_batches_cross_batch_dedup_single_read():
    """A sample requested by two consecutive batches is planned as ONE
    wire read with one scatter slice per requesting position."""
    plan = FetchPlanner().plan_batches(
        [
            ([1, 1], [0, 64], [16, 16]),  # batch k: samples A, B
            ([1, 2], [64, 0], [16, 32]),  # batch k+1: B again, C
        ]
    )
    assert plan.n_requests == 4
    # B's byte range [64, 80) on target 1 appears in exactly one read...
    b_reads = [r for r in plan.reads if r.target == 1 and r.offset == 64]
    assert len(b_reads) == 1
    # ...with two scatter destinations: position 1 (batch k) and 2 (k+1).
    assert sorted(s.position for s in b_reads[0].slices) == [1, 2]
    # Wire bytes are deduplicated: A + B + C moved once each.
    assert plan.total_bytes == 16 + 16 + 32


def test_plan_batches_coalesces_across_batch_boundary():
    """Ranges adjacent across a batch boundary merge into one read."""
    plan = FetchPlanner().plan_batches(
        [
            ([1], [0], [16]),
            ([1], [16], [16]),  # touches the previous batch's range
        ]
    )
    assert plan.n_reads == 1
    assert plan.reads[0].request == (1, 0, 32)
    assert [s.position for s in plan.reads[0].slices] == [0, 1]


def test_plan_batches_empty_groups():
    assert FetchPlanner().plan_batches([]).n_reads == 0
    plan = FetchPlanner().plan_batches([([], [], []), ([1], [0], [8])])
    assert plan.n_reads == 1
    assert plan.n_requests == 1
