"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import ChunkLayout, ChunkRegistry, DDStoreConfig, GlobalShuffleSampler, LocalShuffleSampler
from repro.graphs import AtomicGraph, collate
from repro.mpi.datatypes import sizeof
from repro.sim import Engine, QueueStation, FluidStation
from repro.storage import pack_graph, packed_size, unpack_graph


# ---------------------------------------------------------------------------
# graph codec
# ---------------------------------------------------------------------------

@st.composite
def atomic_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    f = draw(st.integers(min_value=1, max_value=6))
    out = draw(st.integers(min_value=1, max_value=16))
    e = draw(st.integers(min_value=0, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = (
        rng.integers(0, n, size=(2, e)) if e else np.zeros((2, 0), dtype=np.int32)
    )
    return AtomicGraph(
        positions=rng.normal(size=(n, 3)),
        node_features=rng.normal(size=(n, f)),
        edge_index=edges,
        y=rng.normal(size=out),
        sample_id=draw(st.integers(min_value=0, max_value=2**40)),
    )


@given(atomic_graphs())
@settings(max_examples=50, deadline=None)
def test_codec_roundtrip_arbitrary_graphs(g):
    blob = pack_graph(g)
    assert len(blob) == packed_size(g.n_nodes, g.n_edges, g.feature_dim, g.output_dim)
    back = unpack_graph(blob)
    assert back.allclose(g)


@given(atomic_graphs(), atomic_graphs())
@settings(max_examples=25, deadline=None)
def test_codec_concatenated_blobs_recoverable(g1, g2):
    # DDStore stores blobs back to back; slicing by size must recover each.
    b1, b2 = pack_graph(g1), pack_graph(g2)
    buf = b1 + b2
    assert unpack_graph(buf[: len(b1)]).allclose(g1)
    assert unpack_graph(buf[len(b1) :]).allclose(g2)


# ---------------------------------------------------------------------------
# columnar (AGRC) shard codec
# ---------------------------------------------------------------------------

@st.composite
def columnar_shards(draw):
    """Raw column arrays for a shard, including degenerate shapes.

    The array-level ``pack_columns`` API permits shapes AtomicGraph
    forbids — samples with zero nodes, zero feature dims, zero output
    dims — so the codec is exercised over its full domain.
    """
    n = draw(st.integers(min_value=1, max_value=6))
    f = draw(st.integers(min_value=0, max_value=5))
    out = draw(st.integers(min_value=0, max_value=6))
    n_nodes = np.array(
        draw(st.lists(st.integers(0, 12), min_size=n, max_size=n)), np.uint32
    )
    n_edges = np.array(
        draw(st.lists(st.integers(0, 20), min_size=n, max_size=n)), np.uint32
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    N, E = int(n_nodes.sum()), int(n_edges.sum())
    codec = draw(st.sampled_from(["raw", "byteshuffle", "rle"]))
    return dict(
        sample_ids=rng.integers(0, 2**40, size=n).astype(np.int64),
        n_nodes=n_nodes,
        n_edges=n_edges,
        positions=rng.normal(size=(N, 3)).astype(np.float32),
        node_features=rng.normal(size=(N, f)).astype(np.float32),
        edge_index=rng.integers(0, max(N, 1), size=(2, E)).astype(np.int32),
        y=rng.normal(size=(n, out)).astype(np.float32),
        codec=codec,
    )


@given(columnar_shards())
@settings(max_examples=60, deadline=None)
def test_columnar_shard_roundtrip_including_degenerates(case):
    from repro.storage import pack_columns, shard_packed_size, unpack_shard

    codec = case.pop("codec")
    blob = pack_columns(**case, codecs=codec)
    if codec == "raw":
        # packed_size cross-check only holds for the identity codec.
        assert len(blob) == shard_packed_size(
            case["sample_ids"].size,
            int(case["n_nodes"].sum()),
            int(case["n_edges"].sum()),
            case["node_features"].shape[1],
            case["y"].shape[1],
        )
    shard = unpack_shard(blob)
    assert np.array_equal(shard.sample_ids, case["sample_ids"])
    assert np.array_equal(shard.n_nodes, case["n_nodes"])
    assert np.array_equal(shard.n_edges, case["n_edges"])
    assert np.array_equal(shard.positions, case["positions"])
    assert np.array_equal(shard.node_features, case["node_features"])
    assert np.array_equal(shard.edge_index, case["edge_index"])
    assert np.array_equal(shard.y, case["y"])


@given(atomic_graphs(), st.sampled_from(["raw", "byteshuffle", "rle"]))
@settings(max_examples=40, deadline=None)
def test_columnar_shard_agrees_with_row_codec(g, codec):
    # The same graph through both codecs round-trips to the same values;
    # the raw shard size and the sum of row packed sizes differ only by
    # the layout overhead (shard header/descriptors/index vs row headers).
    from repro.storage import pack_shard, shard_packed_size, unpack_shard

    shard = unpack_shard(pack_shard([g, g], codecs=codec))
    assert shard.graph(0).allclose(unpack_graph(pack_graph(g)))
    assert shard.graph(1).allclose(g)
    raw_size = shard_packed_size(2, 2 * g.n_nodes, 2 * g.n_edges, g.feature_dim, g.output_dim)
    rows_size = 2 * packed_size(g.n_nodes, g.n_edges, g.feature_dim, g.output_dim)
    assert raw_size - (20 + 4 * 48 + 2 * 16) == rows_size - 2 * 32


@given(atomic_graphs())
@settings(max_examples=30, deadline=None)
def test_row_codec_no_copy_views_match_copy(g):
    blob = pack_graph(g)
    assert unpack_graph(blob, copy=False).allclose(unpack_graph(blob))


# ---------------------------------------------------------------------------
# chunk layout / registry
# ---------------------------------------------------------------------------

@given(
    n_samples=st.integers(min_value=1, max_value=5000),
    width=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_layout_partition_invariants(n_samples, width):
    layout = ChunkLayout.build(n_samples, width)
    sizes = np.diff(layout.bounds)
    assert sizes.sum() == n_samples
    assert sizes.min() >= 0
    assert sizes.max() - sizes.min() <= 1  # balanced
    # Ownership is consistent with ranges.
    idx = np.arange(n_samples)
    owners = layout.owner_of(idx)
    for r in range(width):
        lo, hi = layout.chunk_range(r)
        assert np.all(owners[lo:hi] == r)


@given(
    width=st.integers(min_value=1, max_value=8),
    sizes=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=64),
)
@settings(max_examples=60, deadline=None)
def test_registry_locate_consistency(width, sizes):
    n = len(sizes)
    if n < width:
        width = n
    layout = ChunkLayout.build(n, width)
    by_member = [
        np.array(sizes[layout.chunk_range(r)[0] : layout.chunk_range(r)[1]], dtype=np.int64)
        for r in range(width)
    ]
    reg = ChunkRegistry.from_sample_sizes(layout, by_member)
    # Every sample's (owner, offset, size) is self-consistent.
    total = 0
    for g in range(n):
        owner, off, size = reg.locate(g)
        assert size == sizes[g]
        lo, _hi = layout.chunk_range(owner)
        expect_off = sum(sizes[lo:g])
        assert off == expect_off
        total += size
    assert reg.total_bytes == total


# ---------------------------------------------------------------------------
# DDStore config
# ---------------------------------------------------------------------------

@given(n_ranks=st.integers(min_value=1, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_config_groups_partition_ranks(n_ranks):
    # pick a valid width: any divisor
    divisors = [w for w in range(1, n_ranks + 1) if n_ranks % w == 0]
    width = divisors[len(divisors) // 2]
    cfg = DDStoreConfig(n_ranks=n_ranks, width=width)
    assert cfg.n_replicas * cfg.effective_width == n_ranks
    groups = [cfg.group_of_rank(r) for r in range(n_ranks)]
    # each group has exactly `width` members
    counts = np.bincount(groups)
    assert np.all(counts == width)
    # group-rank is a bijection within each group
    for g in range(cfg.n_replicas):
        members = [r for r in range(n_ranks) if groups[r] == g]
        assert sorted(cfg.group_rank(r) for r in members) == list(range(width))


# ---------------------------------------------------------------------------
# samplers
# ---------------------------------------------------------------------------

@given(
    n_samples=st.integers(min_value=8, max_value=2000),
    n_ranks=st.integers(min_value=1, max_value=8),
    epoch=st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_global_shuffle_is_partition_of_prefix(n_samples, n_ranks, epoch, seed):
    if n_samples < n_ranks:
        n_samples = n_ranks
    chunks = [
        GlobalShuffleSampler(n_samples, n_ranks, r, seed=seed).epoch_indices(epoch)
        for r in range(n_ranks)
    ]
    allv = np.concatenate(chunks)
    # no duplicates, all in range
    assert len(set(allv.tolist())) == allv.size
    assert allv.min() >= 0 and allv.max() < n_samples
    per = n_samples // n_ranks
    assert all(c.size == per for c in chunks)


@given(
    n_samples=st.integers(min_value=8, max_value=2000),
    n_ranks=st.integers(min_value=1, max_value=8),
    rank_seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_local_shuffle_is_shard_permutation(n_samples, n_ranks, rank_seed):
    rank = rank_seed % n_ranks
    s = LocalShuffleSampler(n_samples, n_ranks, rank, seed=3)
    lo, hi = s.shard_range
    idx = s.epoch_indices(rank_seed)
    assert idx.size == n_samples // n_ranks
    assert set(idx.tolist()) <= set(range(lo, hi))
    assert len(set(idx.tolist())) == idx.size


# ---------------------------------------------------------------------------
# collation
# ---------------------------------------------------------------------------

@given(st.lists(atomic_graphs(), min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_collate_roundtrip_property(graphs):
    # normalise dims so the batch is well-formed
    f = graphs[0].feature_dim
    out = graphs[0].output_dim
    usable = [g for g in graphs if g.feature_dim == f and g.output_dim == out]
    batch = collate(usable)
    assert batch.n_nodes == sum(g.n_nodes for g in usable)
    assert batch.n_edges == sum(g.n_edges for g in usable)
    for i, g in enumerate(usable):
        assert batch.graph(i).allclose(g)


# ---------------------------------------------------------------------------
# queueing stations
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10),  # inter-arrival gap
            st.floats(min_value=0, max_value=1),  # service
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_queue_station_conservation_properties(jobs):
    eng = Engine()
    q = QueueStation(eng)
    t = 0.0
    prev_finish = 0.0
    for gap, service in jobs:
        t += gap
        finish = q.serve(t, service)
        # completion after arrival + service; FIFO monotone completions
        assert finish >= t + service - 1e-12
        assert finish >= prev_finish - 1e-12
        prev_finish = finish
    assert q.jobs_served == len(jobs)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=0.01),
            st.floats(min_value=0, max_value=0.002),
        ),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=60, deadline=None)
def test_fluid_station_sanity(jobs):
    eng = Engine()
    q = FluidStation(eng, bucket_s=1e-3)
    t = 0.0
    for gap, service in jobs:
        t += gap
        finish = q.serve(t, service)
        assert finish >= t + service - 1e-12  # never faster than service
    # total booked work conserved
    assert q.busy_time >= 0
    assert q.jobs_served == len(jobs)


@given(st.floats(min_value=1e-5, max_value=0.5))
@settings(max_examples=30, deadline=None)
def test_fluid_station_idle_is_free(service):
    # A lone request on an idle station is never queued.
    eng = Engine()
    q = FluidStation(eng, bucket_s=1e-3)
    assert q.serve(100.0, service) == 100.0 + service


# ---------------------------------------------------------------------------
# sizeof
# ---------------------------------------------------------------------------

@given(
    st.recursive(
        st.one_of(
            st.integers(),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.booleans(),
            st.none(),
        ),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=5), children, max_size=4),
        max_leaves=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_sizeof_positive_for_python_objects(obj):
    assert sizeof(obj) > 0


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_sizeof_numpy_is_exact(n):
    arr = np.zeros(n, dtype=np.float32)
    assert sizeof(arr) == 4 * n


# ---------------------------------------------------------------------------
# fetch planner / scatter round trip
# ---------------------------------------------------------------------------

@st.composite
def fetch_requests(draw):
    """Per-target byte buffers plus a request list over them.

    Requests deliberately include duplicate sample ids, zero-size samples,
    and (sometimes) a max_read_bytes cap near the span sizes, so coalescing,
    splitting, and slice bookkeeping all get exercised.
    """
    n_targets = draw(st.integers(min_value=1, max_value=4))
    buf_len = draw(st.integers(min_value=64, max_value=512))
    buffers = {
        t: (np.arange(buf_len, dtype=np.int64) * (t + 7) % 251).astype(np.uint8)
        for t in range(n_targets)
    }
    n_req = draw(st.integers(min_value=1, max_value=24))
    requests = []
    for _ in range(n_req):
        target = draw(st.integers(min_value=0, max_value=n_targets - 1))
        size = draw(st.sampled_from([0, 0, 1, 7, 16, 33, 64]))
        offset = draw(st.integers(min_value=0, max_value=buf_len - max(size, 1)))
        requests.append((target, offset, size))
    # Duplicate ids: repeat a prefix of the request list.
    n_dup = draw(st.integers(min_value=0, max_value=min(4, n_req)))
    requests.extend(requests[:n_dup])
    max_read = draw(st.sampled_from([None, None, 48, 64, 128]))
    return buffers, requests, max_read


@given(fetch_requests(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_planner_scatter_roundtrip_byte_identical(case, coalesce):
    from repro.core.store import DDStore
    from repro.dataplane import FetchOutcome, FetchPlanner

    buffers, requests, max_read = case
    targets = [r[0] for r in requests]
    offsets = [r[1] for r in requests]
    sizes = [r[2] for r in requests]
    plan = FetchPlanner(coalesce=coalesce, max_read_bytes=max_read).plan(
        targets, offsets, sizes
    )
    assert plan.n_requests == len(requests)
    assert plan.total_bytes == sum(r.nbytes for r in plan.reads)
    if max_read is not None and coalesce:
        # The read cap only binds on the coalescing path (non-coalescing is
        # one verbatim read per request).
        assert all(r.nbytes <= max_read for r in plan.reads)
    # Serve every planned read straight out of the per-target buffers.
    payloads = [
        buffers[r.target][r.offset : r.offset + r.nbytes].copy() for r in plan.reads
    ]
    outcome = FetchOutcome(
        payloads=payloads,
        latencies=np.zeros(len(payloads), dtype=np.float64),
        stage_seconds={},
    )
    blobs = [None] * len(requests)
    latencies = [0.0] * len(requests)
    DDStore._scatter(plan, outcome, blobs, latencies)
    for i, (t, off, size) in enumerate(requests):
        if size == 0:
            assert blobs[i] is None  # zero-size ids never reach the plan
            continue
        expected = buffers[t][off : off + size]
        assert blobs[i] is not None
        assert np.array_equal(blobs[i], expected)
