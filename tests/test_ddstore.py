"""Integration tests for DDStore over the simulated MPI runtime."""

import numpy as np
import pytest

from repro.core import (
    DataLoader,
    DataPlaneOptions,
    DDStore,
    DDStoreDataset,
    FileDataset,
    GeneratorSource,
    ReaderSource,
)
from repro.graphs import IsingGenerator, MoleculeGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world
from repro.storage import CFFReader, CFFWriter, PFFReader, PFFWriter


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def _source(ctx, n=32, gen_cls=IsingGenerator, seed=0):
    return GeneratorSource(gen_cls(n, seed=seed), ctx.world.machine)


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

def test_create_default_width_single_replica():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        return (store.width, store.n_replicas, store.local_range, store.memory_bytes)

    job = run(main)  # 4 ranks
    widths = {r[0] for r in job.results}
    assert widths == {4}
    assert {r[1] for r in job.results} == {1}
    ranges = [r[2] for r in job.results]
    assert ranges == [(0, 8), (8, 16), (16, 24), (24, 32)]
    assert all(r[3] > 0 for r in job.results)


def test_create_width_two_makes_two_replicas():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx), width=2)
        return (store.n_replicas, store.group_comm.size, store.local_range)

    job = run(main)
    assert all(r[0] == 2 for r in job.results)
    assert all(r[1] == 2 for r in job.results)
    # Ranks 0/1 form group 0, ranks 2/3 group 1; both groups hold all 32.
    assert job.results[0][2] == (0, 16)
    assert job.results[2][2] == (0, 16)


def test_every_sample_fetchable_and_correct():
    gen = IsingGenerator(32, seed=0)

    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        graphs = yield from store.get_samples(range(32))
        return [g.sample_id for g in graphs], graphs[17]

    job = run(main)
    for ids, g17 in job.results:
        assert ids == list(range(32))
        assert g17.allclose(gen.make(17))


def test_fetch_order_preserved_with_shuffled_request():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        order = [31, 0, 16, 5, 5, 9]
        graphs = yield from store.get_samples(order)
        return [g.sample_id for g in graphs]

    job = run(main)
    assert job.results[0] == [31, 0, 16, 5, 5, 9]


def test_local_fetches_do_not_touch_network():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        lo, hi = store.local_range
        yield from store.get_samples(range(lo, hi))
        return (store.stats.n_local, store.stats.n_remote)

    job = run(main)
    for n_local, n_remote in job.results:
        assert n_remote == 0 and n_local == 8


def test_remote_fetch_counts_and_bytes():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        lo, hi = store.local_range
        remote = [(hi + k) % 32 for k in range(4)]
        yield from store.get_samples(remote)
        return (store.stats.n_remote, store.stats.bytes_remote)

    job = run(main)
    for n_remote, bytes_remote in job.results:
        assert n_remote == 4
        assert bytes_remote > 0


def test_replica_groups_fetch_only_within_group():
    # With width=2 the second group's members must get correct data even
    # though group 0 holds a disjoint copy.
    gen = MoleculeGenerator(24, seed=5)

    def main(ctx):
        src = GeneratorSource(MoleculeGenerator(24, seed=5), ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, src, width=2)
        graphs = yield from store.get_samples([23, 1, 12])
        return [g.sample_id for g in graphs], graphs[0]

    job = run(main)
    for ids, g in job.results:
        assert ids == [23, 1, 12]
        assert g.allclose(gen.make(23))


def test_memory_scales_with_replication():
    def footprint(width):
        def main(ctx):
            store = yield from DDStore.create(ctx.comm, _source(ctx), width=width)
            return store.memory_bytes

        return sum(run(main).results)

    assert footprint(2) == pytest.approx(2 * footprint(4), rel=0.05)


def test_latency_recording():
    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm, _source(ctx), record_latencies=True
        )
        yield from store.get_samples(range(32))
        return store.stats.latency_array()

    job = run(main)
    lats = job.results[0]
    assert lats.shape == (32,)
    assert np.all(lats > 0)


def test_empty_fetch():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        out = yield from store.get_samples([])
        return out

    job = run(main)
    assert job.results == [[]] * 4


def test_global_shuffle_epoch_covers_dataset_once():
    # Across ranks, one epoch of global shuffle + DDStore fetch must yield
    # every sample exactly once.
    def main(ctx):
        from repro.core import GlobalShuffleSampler

        store = yield from DDStore.create(ctx.comm, _source(ctx))
        sampler = GlobalShuffleSampler(32, ctx.size, ctx.rank, seed=3)
        graphs = yield from store.get_samples(sampler.epoch_indices(0))
        return [g.sample_id for g in graphs]

    job = run(main)
    seen = sorted(i for ids in job.results for i in ids)
    assert seen == list(range(32))


# ---------------------------------------------------------------------------
# preload from files
# ---------------------------------------------------------------------------

def _with_files(fmt):
    gen = IsingGenerator(16, seed=2)

    def main(ctx):
        vfs = ctx.world.vfs
        if ctx.rank == 0:  # one rank stages the dataset
            if fmt == "pff":
                PFFWriter.write(vfs, "ds", gen)
            else:
                CFFWriter.write(vfs, "ds", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        reader = (
            PFFReader(vfs, "ds", 16, ctx.world.machine)
            if fmt == "pff"
            else CFFReader(vfs, "ds", ctx.world.machine)
        )
        store = yield from DDStore.create(ctx.comm, ReaderSource(reader))
        graphs = yield from store.get_samples([3, 12])
        return [g.sample_id for g in graphs]

    return main, gen


def test_preload_from_pff():
    main, _gen = _with_files("pff")
    job = run(main)
    assert all(r == [3, 12] for r in job.results)


def test_preload_from_cff():
    main, _gen = _with_files("cff")
    job = run(main)
    assert all(r == [3, 12] for r in job.results)


def test_preload_takes_nonzero_time():
    def main(ctx):
        t0 = ctx.now
        vfs = ctx.world.vfs
        if ctx.rank == 0:
            PFFWriter.write(vfs, "ds", IsingGenerator(16, seed=2))
        yield from ctx.comm.barrier()
        reader = PFFReader(vfs, "ds", 16, ctx.world.machine)
        yield from DDStore.create(ctx.comm, ReaderSource(reader))
        return ctx.now - t0

    job = run(main)
    assert min(job.results) > 0.001  # PFF preload pays metadata ops


# ---------------------------------------------------------------------------
# p2p ablation framework
# ---------------------------------------------------------------------------

def test_p2p_framework_returns_same_data():
    gen = IsingGenerator(16, seed=0)

    def main(ctx):
        src = GeneratorSource(IsingGenerator(16, seed=0), ctx.world.machine)
        store = yield from DDStore.create(
            ctx.comm, src, dataplane=DataPlaneOptions(framework="p2p")
        )
        graphs = yield from store.get_samples([15, 2])
        yield from store.shutdown()
        return graphs

    job = run(main)
    for graphs in job.results:
        assert graphs[0].allclose(gen.make(15))
        assert graphs[1].allclose(gen.make(2))


def test_p2p_slower_than_rma():
    def main(ctx, framework):
        src = GeneratorSource(IsingGenerator(16, seed=0), ctx.world.machine)
        store = yield from DDStore.create(
            ctx.comm, src, dataplane=DataPlaneOptions(framework=framework)
        )
        lo, hi = store.local_range
        remote = [(hi + k) % 16 for k in range(4)]
        t0 = ctx.now
        yield from store.get_samples(remote)
        dt = ctx.now - t0
        if framework == "p2p":
            yield from store.shutdown()
        return dt

    rma = max(run(lambda c: main(c, "mpi-rma"), seed=1).results)
    p2p = max(run(lambda c: main(c, "p2p"), seed=1).results)
    assert p2p > rma  # target polling delay makes two-sided slower


# ---------------------------------------------------------------------------
# DataLoader integration
# ---------------------------------------------------------------------------

def test_dataloader_ddstore_pipeline():
    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm, _source(ctx), record_latencies=True
        )
        loader = DataLoader(
            DDStoreDataset(store), ctx, batch_size=4, shuffle="global", seed=0
        )
        out = []
        for idx in loader.epoch_batches(0):
            loaded = yield from loader.load(idx)
            out.append(loaded)
        return out

    job = run(main)
    loaded = job.results[0]
    assert len(loaded) == 2  # 32 samples / 4 ranks / batch 4
    for lb in loaded:
        assert lb.batch.n_graphs == 4
        assert lb.load_time > 0
        assert lb.batching_time > 0
        assert lb.per_sample_latency.shape == (4,)


def test_dataloader_file_dataset_matches_ddstore_content():
    def main(ctx):
        vfs = ctx.world.vfs
        gen = IsingGenerator(16, seed=4)
        if ctx.rank == 0:
            CFFWriter.write(vfs, "c", gen, n_subfiles=2)
        yield from ctx.comm.barrier()
        reader = CFFReader(vfs, "c", ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, ReaderSource(reader))
        dd = DDStoreDataset(store)
        fd = FileDataset(reader, ctx)
        a = yield from dd.fetch([1, 9])
        b = yield from fd.fetch([1, 9])
        return a.graphs, b.graphs

    job = run(main)
    for a, b in job.results:
        for ga, gb in zip(a, b):
            assert ga.allclose(gb)


def test_dataloader_steps_per_epoch_cap():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        loader = DataLoader(
            DDStoreDataset(store), ctx, batch_size=2, steps_per_epoch=1
        )
        assert loader.n_steps() == 1
        return len(loader.epoch_batches(0))
        yield  # pragma: no cover

    job = run(main)
    assert job.results == [1] * 4


def test_dataloader_rejects_bad_shuffle():
    def main(ctx):
        store = yield from DDStore.create(ctx.comm, _source(ctx))
        DataLoader(DDStoreDataset(store), ctx, batch_size=2, shuffle="sorted")

    with pytest.raises(ValueError, match="shuffle"):
        run(main)
