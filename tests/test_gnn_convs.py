"""Tests for the alternative message-passing layers (GIN, SAGE)."""

import numpy as np
import pytest

from repro.gnn import AdamW, HydraGNN, HydraGNNConfig, mse_loss
from repro.gnn.convs import CONV_TYPES, GINConv, SAGEConv, make_conv
from repro.gnn.pna import PNAConv
from repro.graphs import IsingGenerator, collate


def _ring(n=6, f=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, f))
    src = np.concatenate([np.arange(n), (np.arange(n) + 1) % n])
    dst = np.concatenate([(np.arange(n) + 1) % n, np.arange(n)])
    return x, np.stack([src, dst]).astype(np.int32)


def _numeric_input_grad(conv, x, ei, t, eps=1e-6):
    num = np.zeros_like(x)
    for i in range(x.shape[0]):
        for j in range(x.shape[1]):
            old = x[i, j]
            x[i, j] = old + eps
            fp = mse_loss(conv.forward_graph(x, ei), t)[0]
            x[i, j] = old - eps
            fm = mse_loss(conv.forward_graph(x, ei), t)[0]
            x[i, j] = old
            num[i, j] = (fp - fm) / (2 * eps)
    return num


@pytest.mark.parametrize("cls,key", [(GINConv, ("tg",)), (SAGEConv, ("ts",))])
def test_conv_forward_shape(cls, key):
    x, ei = _ring(6, 3)
    conv = cls(3, 5, rng_key=key)
    out = conv.forward_graph(x, ei)
    assert out.shape == (6, 5)
    assert np.all(np.isfinite(out))


@pytest.mark.parametrize("cls,key", [(GINConv, ("g1",)), (SAGEConv, ("s1",))])
def test_conv_input_gradient_numeric(cls, key):
    x, ei = _ring(5, 2, seed=3)
    conv = cls(2, 3, rng_key=key)
    t = np.random.default_rng(4).normal(size=(5, 3))
    conv.zero_grad()
    out = conv.forward_graph(x, ei)
    _, grad = mse_loss(out, t)
    gin = conv.backward(grad)
    num = _numeric_input_grad(conv, x, ei, t)
    assert np.allclose(gin, num, atol=1e-5)


def test_gin_eps_gradient_numeric():
    x, ei = _ring(4, 2, seed=5)
    conv = GINConv(2, 2, rng_key=("ge",))
    t = np.random.default_rng(6).normal(size=(4, 2))
    conv.zero_grad()
    out = conv.forward_graph(x, ei)
    _, grad = mse_loss(out, t)
    conv.backward(grad)
    eps = 1e-6
    old = conv.eps.value[0]
    conv.eps.value[0] = old + eps
    fp = mse_loss(conv.forward_graph(x, ei), t)[0]
    conv.eps.value[0] = old - eps
    fm = mse_loss(conv.forward_graph(x, ei), t)[0]
    conv.eps.value[0] = old
    assert conv.eps.grad[0] == pytest.approx((fp - fm) / (2 * eps), abs=1e-6)


def test_sage_mean_aggregation_value():
    # Node 0 receives 2 and 4 -> mean 3; check through identity-ish weights.
    x = np.array([[0.0], [2.0], [4.0]])
    ei = np.array([[1, 2], [0, 0]])
    conv = SAGEConv(1, 1, rng_key=("sv",))
    conv.lin_self.W.value[:] = 0.0
    conv.lin_self.b.value[:] = 0.0
    conv.lin_neigh.W.value[:] = 1.0
    conv.lin_neigh.b.value[:] = 0.0
    out = conv.forward_graph(x, ei)
    assert out[0, 0] == pytest.approx(3.0)
    assert out[1, 0] == pytest.approx(0.0)  # no in-edges -> zero mean


def test_make_conv_factory():
    assert isinstance(make_conv("pna", 4, 4), PNAConv)
    assert isinstance(make_conv("gin", 4, 4), GINConv)
    assert isinstance(make_conv("sage", 4, 4), SAGEConv)
    with pytest.raises(ValueError, match="conv_type"):
        make_conv("transformer", 4, 4)
    assert set(CONV_TYPES) == {"pna", "gin", "sage"}


@pytest.mark.parametrize("conv_type", CONV_TYPES)
def test_model_trains_with_every_policy(conv_type):
    gen = IsingGenerator(24, seed=0)
    batch = collate([gen.make(i) for i in range(24)])
    model = HydraGNN(
        HydraGNNConfig(
            feature_dim=1, head_dims=(1,), hidden_dim=16, n_conv_layers=2,
            conv_type=conv_type,
        ),
        seed=1,
    )
    opt = AdamW(model.params(), lr=3e-3, weight_decay=0.0)
    first = last = None
    for _ in range(40):
        opt.zero_grad()
        loss = model.train_step_loss(batch)
        opt.step()
        first = loss if first is None else first
        last = loss
    assert last < first, conv_type


def test_policies_have_different_parameter_counts():
    def count(ct):
        return HydraGNN(
            HydraGNNConfig(feature_dim=1, head_dims=(1,), hidden_dim=8, n_conv_layers=1, conv_type=ct)
        ).n_params()

    counts = {ct: count(ct) for ct in CONV_TYPES}
    assert counts["pna"] > counts["gin"] > 0
    assert counts["sage"] != counts["pna"]
