"""Tests for the ASCII chart renderer used in benchmark reports."""

import numpy as np
import pytest

from repro.bench.plotting import ascii_cdf, ascii_plot


def test_basic_plot_contains_markers_and_legend():
    text = ascii_plot(
        {"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [9, 4, 1])},
        width=40,
        height=10,
        title="T",
    )
    assert text.splitlines()[0] == "T"
    assert "*" in text and "o" in text
    assert "* a" in text and "o b" in text


def test_plot_axis_labels_show_ranges():
    text = ascii_plot({"s": ([0, 10], [0, 100])}, width=30, height=8)
    assert "100" in text
    assert "10" in text


def test_log_axes():
    text = ascii_plot(
        {"s": ([1, 10, 100], [1, 10, 100])}, width=30, height=8, logx=True, logy=True
    )
    assert "100" in text
    with pytest.raises(ValueError, match="positive"):
        ascii_plot({"s": ([0, 1], [1, 2])}, logx=True)


def test_plot_validation():
    with pytest.raises(ValueError):
        ascii_plot({})
    with pytest.raises(ValueError):
        ascii_plot({"s": ([1], [1])}, width=2)
    with pytest.raises(ValueError, match="mismatched"):
        ascii_plot({"s": ([1, 2], [1])})


def test_degenerate_single_point():
    text = ascii_plot({"s": ([5], [7])}, width=20, height=6)
    assert "*" in text


def test_ascii_cdf_orders_fast_series_left():
    rng = np.random.default_rng(0)
    fast = rng.exponential(1e-4, size=400)
    slow = rng.exponential(1e-2, size=400)
    text = ascii_cdf({"fast": fast, "slow": slow}, width=60, height=12)
    # Both series present; the fast curve's marker appears before the slow
    # one's in the upper rows (left = lower latency).
    rows = [l for l in text.splitlines() if "|" in l]
    upper = "".join(rows[: len(rows) // 2])
    assert upper.index("*") < upper.index("o")
