"""Node-aggregated wave fetch: byte-identity, resilience, and composition.

The tentpole property: with ``node_fetch=True`` every rank receives batches
*byte-identical* to the per-rank wave path — across row/columnar layouts,
cache policies, shuffle samplers, prefetch depths, and fault plans
(including a straggler under the leader's wire read, which must ride the
same retry/failover ladder as per-rank fetches).  Composition tests cover
the reshard fence mid-wave and per-tenant byte isolation on the serving
layer.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import client
from repro.core import (
    DataLoader,
    DataPlaneOptions,
    DDStore,
    DDStoreDataset,
    GeneratorSource,
    ResilienceOptions,
    ServingOptions,
)
from repro.dataplane.scheduler import EpochScheduler
from repro.faults import FaultPlan, SlowRank, install_faults
from repro.graphs import IsingGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world
from repro.mpi.comm import World


def run(fn, n_nodes=2, **kw):
    return run_world(TESTBOX, n_nodes, fn, **kw)


def _source(ctx, n=32, seed=0):
    return GeneratorSource(IsingGenerator(n, seed=seed), ctx.world.machine)


def _digest(batch) -> bytes:
    """Canonical bytes of a collated batch, layout-independent."""
    parts = []
    for j in range(batch.n_graphs):
        g = batch.graph(j)
        parts.append(np.int64(g.sample_id).tobytes())
        for arr in (g.positions, g.node_features, g.edge_index, g.y):
            parts.append(np.ascontiguousarray(arr).tobytes())
    return b"".join(parts)


def _epoch(ctx, node_fetch, *, columnar=False, cache_policy="lru",
           shuffle="global", depth=4, resilience=None, n=32, batch_size=4,
           width=2):
    """Scheduler-driven epoch (the trainer's fetch loop, minus the GPU);
    returns each step's batch digest plus the store's fetch stats."""
    store = yield from DDStore.create(
        ctx.comm,
        _source(ctx, n=n),
        width=width,  # 2 = two replica groups: gives the ladder a failover target
        dataplane=DataPlaneOptions(
            cache_bytes=1 << 20,
            scheduler=True,
            prefetch_depth=depth,
            cache_policy=cache_policy,
            columnar=columnar,
            node_fetch=node_fetch,
        ),
        resilience=resilience,
    )
    loader = DataLoader(
        DDStoreDataset(store), ctx, batch_size=batch_size, shuffle=shuffle, seed=0
    )
    batches = loader.epoch_batches(0)
    sched = EpochScheduler(loader, batches, engine=ctx.engine, epoch=0)
    sched.start()
    digests = []
    for step in range(len(batches)):
        loaded = yield sched.event(step)
        sched.advance(step)
        digests.append(_digest(loaded.batch))
        release = getattr(loaded, "release", None)
        if release is not None:
            release()
    return digests, store.stats


# ---------------------------------------------------------------------------
# the tentpole property: aggregation changes timing and wire traffic, never bytes
# ---------------------------------------------------------------------------

@given(
    columnar=st.booleans(),
    cache_policy=st.sampled_from(["lru", "belady"]),
    shuffle=st.sampled_from(["global", "sampled"]),
    depth=st.integers(min_value=2, max_value=6),
    straggler=st.booleans(),
)
@settings(max_examples=8, deadline=None)
def test_node_fetch_batches_byte_identical(columnar, cache_policy, shuffle, depth, straggler):
    def job(node_fetch):
        kw = dict(
            columnar=columnar, cache_policy=cache_policy,
            shuffle=shuffle, depth=depth,
        )
        if straggler:
            # Rank 2 (a remote owner for node 0) is slow; both paths must
            # absorb it through the same retry/failover ladder.  The exact
            # timeout does not matter for byte identity — the final attempt
            # runs unbounded, so the ladder always terminates.
            world = World(TESTBOX, 2, seed=0)
            install_faults(
                world, FaultPlan("t", (SlowRank(rank=2, multiplier=50.0),))
            )
            kw["resilience"] = ResilienceOptions(
                timeout_s=2e-3, max_retries=3, backoff_s=1e-5
            )
            return run(lambda c: _epoch(c, node_fetch, **kw), world=world)
        return run(lambda c: _epoch(c, node_fetch, **kw))

    base = job(False)
    agg = job(True)
    for rank, ((d0, s0), (d1, s1)) in enumerate(zip(base.results, agg.results)):
        assert d0 == d1, f"rank {rank}: batch bytes diverge under node_fetch"
        assert s0.n_node_waves == 0
        assert s1.n_node_waves > 0  # aggregation actually engaged


# ---------------------------------------------------------------------------
# leader straggler: the aggregated wire read rides the retry/failover ladder
# ---------------------------------------------------------------------------

def test_node_fetch_leader_read_rides_retry_ladder():
    # Calibrate: healthy wave latencies bound the timeout.
    healthy = run(lambda c: _epoch(c, True))
    h_digests = [d for d, _s in healthy.results]

    def faulted():
        world = World(TESTBOX, 2, seed=0)
        install_faults(
            world, FaultPlan("t", (SlowRank(rank=2, multiplier=1000.0),))
        )
        res = ResilienceOptions(timeout_s=2e-3, max_retries=2, backoff_s=1e-5)
        return run(lambda c: _epoch(c, True, resilience=res), world=world)

    job = faulted()
    timeouts = sum(s.n_timeouts for _d, s in job.results)
    failovers = sum(s.n_failovers for _d, s in job.results)
    # The leader reads hitting the slow owner blew their deadline and were
    # re-routed to a replica — the same ladder demand fetches ride.
    assert timeouts > 0 and failovers > 0
    assert all(s.n_node_waves > 0 for _d, s in job.results)
    # ...and the payloads the node fanned out are still the right bytes.
    for (d, _s), h in zip(job.results, h_digests):
        assert d == h

    # Bit-determinism: the same faulted world replays identically.
    again = faulted()
    for (d1, s1), (d2, s2) in zip(job.results, again.results):
        assert d1 == d2
        assert s1.n_timeouts == s2.n_timeouts
        assert s1.n_failovers == s2.n_failovers
        assert s1.bytes_node_wire == s2.bytes_node_wire


# ---------------------------------------------------------------------------
# wire accounting: dedup saves bytes, fan-out delivers them
# ---------------------------------------------------------------------------

def test_node_fetch_dedups_wire_bytes_under_overlap():
    # The sampled shuffler draws with replacement from a skewed hotness
    # ranking, so node-local ranks request overlapping id sets — exactly
    # the traffic node aggregation exists to dedup.  A single replica
    # group spanning both nodes (width=None) keeps the node-mates' demand
    # on shared remote targets; with width == ranks-per-node the group
    # coincides with the node and their target ranges are disjoint.
    base = run(lambda c: _epoch(c, False, shuffle="sampled", depth=6, width=None))
    agg = run(lambda c: _epoch(c, True, shuffle="sampled", depth=6, width=None))
    base_wire = sum(s.bytes_prefetched for _d, s in base.results)
    agg_wire = sum(s.bytes_node_wire for _d, s in agg.results)
    requested = sum(s.bytes_node_requested for _d, s in agg.results)
    fanned = sum(s.bytes_fanout for _d, s in agg.results)
    assert 0 < agg_wire < base_wire  # strictly fewer wire bytes
    assert agg_wire < requested  # dedup: wire < sum of per-rank demand
    assert fanned > 0  # subscribers were fed over the intra-node path
    for _d, s in agg.results:
        # Fan-out time is priced and attributed to the new stage.
        assert s.n_fanout == 0 or s.prefetch_stage_seconds.get("fanout", 0.0) > 0


# ---------------------------------------------------------------------------
# composition: reshard fence mid-wave
# ---------------------------------------------------------------------------

def test_node_fetch_reshard_mid_wave_resumes_cleanly():
    n = 32
    gen = IsingGenerator(n, seed=0)

    def main(ctx):
        store = yield from DDStore.create(
            ctx.comm,
            _source(ctx, n=n),
            dataplane=DataPlaneOptions(
                cache_bytes=1 << 20, prefetch_depth=4, scheduler=True,
                node_fetch=True,
            ),
        )
        dataset = DDStoreDataset(store)
        loader = DataLoader(dataset, ctx, batch_size=4, shuffle="global", seed=0)
        batches = loader.epoch_batches(0)
        sched = EpochScheduler(loader, batches, engine=ctx.engine, epoch=0)
        sched.start()
        first = yield sched.event(0)
        sched.advance(0)
        # Fence mid-wave: in-flight node waves must resolve (or abort to
        # the residue path) before the reshard tears the transport down.
        drained = yield from sched.drain()
        new = yield from store.reshard(width=2)
        dataset.store = new
        got = [first]
        for step in range(1, len(batches)):
            loaded = yield sched.event(step)
            sched.advance(step)
            got.append(loaded)
        ok = all(
            loaded.batch.graph(j).allclose(gen.make(int(i)))
            for loaded, idx in zip(got, batches)
            for j, i in enumerate(idx)
        )
        yield from new.shutdown()
        return drained, len(got), ok

    job = run(main)
    for drained, n_batches, ok in job.results:
        assert drained > 0
        assert n_batches > 1
        assert ok


# ---------------------------------------------------------------------------
# composition: multi-tenant serving — per-tenant byte isolation
# ---------------------------------------------------------------------------

def _tenant_epoch(ctx, session, seed):
    loader = DataLoader(
        DDStoreDataset(session.store), ctx, batch_size=4, shuffle="global", seed=seed
    )
    batches = loader.epoch_batches(0)
    sched = EpochScheduler(loader, batches, engine=ctx.engine, epoch=0)
    sched.start()
    digests = []
    for step in range(len(batches)):
        loaded = yield sched.event(step)
        sched.advance(step)
        digests.append(_digest(loaded.batch))
    return digests


def test_node_fetch_tenant_byte_isolation():
    opts = DataPlaneOptions(
        cache_bytes=1 << 20, scheduler=True, prefetch_depth=4, node_fetch=True
    )
    serving = ServingOptions(max_tenants=2)

    def main(ctx, tenants):
        service = yield from client.serve(
            ctx.comm, _source(ctx), dataplane=opts, serving=serving
        )
        sessions = {t: service.connect(t, qos="batch") for t in tenants}
        out = {}

        def job_(name, session, seed):
            out[name] = yield from _tenant_epoch(ctx, session, seed)

        # Seed is a function of the tenant *name*, not its spawn order, so
        # solo and concurrent runs of one tenant share a permutation.
        seeds = {"a": 10, "b": 11}
        procs = [
            ctx.engine.process(job_(t, sessions[t], seeds[t]), name=t)
            for t in tenants
        ]
        yield ctx.engine.all_of(procs)
        return {
            t: (out[t], sessions[t].stats.counters()) for t in tenants
        }

    both = run(lambda c: main(c, ("a", "b")))
    solo_a = run(lambda c: main(c, ("a",)))
    solo_b = run(lambda c: main(c, ("b",)))
    for r_both, r_a, r_b in zip(both.results, solo_a.results, solo_b.results):
        for t, solo in (("a", r_a), ("b", r_b)):
            digests, counters = r_both[t]
            solo_digests, solo_counters = solo[t]
            # Exactly its own bytes, whether or not a neighbour shares the
            # store: batch payloads and every byte counter match the solo
            # run — tenants never share a rendezvous (coordinator keys
            # carry the tenant), so no wave, wire read, or fan-out of one
            # tenant is billed to the other.
            assert digests == solo_digests
            assert counters["n_node_waves"] == solo_counters["n_node_waves"] > 0
            for key in (
                "bytes_node_requested",
                "bytes_node_wire",
                "bytes_fanout",
                "bytes_prefetched",
                "bytes_transferred",
            ):
                assert counters[key] == solo_counters[key], (t, key)
