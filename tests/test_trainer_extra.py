"""Additional trainer/loader behaviour tests (overlap, eval, reporting)."""

import numpy as np
import pytest

from repro.core import DataLoader, DDStore, DDStoreDataset, GeneratorSource
from repro.gnn import AdamW, DistributedModel, HydraGNN, HydraGNNConfig, Trainer
from repro.graphs import IsingGenerator
from repro.hardware import TESTBOX
from repro.mpi import run_world


def _setup(ctx, n=64, batch=4, hidden=8, real=True):
    src = GeneratorSource(IsingGenerator(n, seed=0), ctx.world.machine)
    store = yield from DDStore.create(ctx.comm, src)
    model = HydraGNN(
        HydraGNNConfig(feature_dim=1, head_dims=(1,), hidden_dim=hidden, n_conv_layers=1),
        seed=0,
    )
    dmodel = DistributedModel(model, ctx.comm)
    loader = DataLoader(DDStoreDataset(store), ctx, batch_size=batch, seed=0)
    trainer = Trainer(ctx, dmodel, loader, AdamW(model.params()), real_compute=real)
    return trainer, loader, store


def test_prefetch_overlaps_loading_with_compute():
    # Epoch wall time must be less than the serial sum of phases (the
    # pipeline hides loading under GPU compute).
    def main(ctx):
        trainer, _, _ = yield from _setup(ctx, real=False)
        report = yield from trainer.train_epoch(0)
        return report.elapsed, report.phases.total

    job = run_world(TESTBOX, 2, main)
    elapsed, phase_sum = job.results[0]
    assert elapsed < phase_sum


def test_dataloader_n_steps_variants():
    def main(ctx):
        _, loader, _ = yield from _setup(ctx, n=64, batch=4)
        full = loader.n_steps()
        capped = DataLoader(
            loader.dataset, ctx, batch_size=4, steps_per_epoch=2, seed=0
        ).n_steps()
        no_drop = DataLoader(
            loader.dataset, ctx, batch_size=5, drop_last=False, seed=0
        ).n_steps()
        return full, capped, no_drop

    job = run_world(TESTBOX, 2, main)
    full, capped, no_drop = job.results[0]
    assert full == 4  # 64 samples / 4 ranks / batch 4
    assert capped == 2
    assert no_drop == 4  # 16 per rank / batch 5 -> 3 full + 1 remainder


def test_evaluate_batches_large_index_sets():
    def main(ctx):
        trainer, _, _ = yield from _setup(ctx)
        yield from trainer.train_epoch(0)
        loss = yield from trainer.evaluate(np.arange(20), batch_size=7)
        return loss

    job = run_world(TESTBOX, 2, main)
    assert all(np.isfinite(v) for v in job.results)


def test_epoch_report_fields_consistent():
    def main(ctx):
        trainer, loader, _ = yield from _setup(ctx)
        report = yield from trainer.train_epoch(0)
        return report, loader.batch_size

    job = run_world(TESTBOX, 2, main)
    report, bs = job.results[0]
    assert report.n_samples == report.n_steps * bs
    assert report.sample_latencies.size == report.n_samples
    assert report.throughput == pytest.approx(report.n_samples / report.elapsed)


def test_second_epoch_different_batches_same_store():
    def main(ctx):
        trainer, loader, store = yield from _setup(ctx, real=False)
        b0 = [tuple(b.tolist()) for b in loader.epoch_batches(0)]
        b1 = [tuple(b.tolist()) for b in loader.epoch_batches(1)]
        yield from trainer.train_epoch(0)
        yield from trainer.train_epoch(1)
        return b0 != b1, store.stats.n_total

    job = run_world(TESTBOX, 2, main)
    differs, fetched = job.results[0]
    assert differs  # global shuffle reshuffles across epochs
    assert fetched == 2 * 16  # two epochs x 16 samples per rank


def test_workers_speed_up_ddstore_fetch_without_changing_data():
    def main(ctx, workers):
        src = GeneratorSource(IsingGenerator(32, seed=0), ctx.world.machine)
        store = yield from DDStore.create(ctx.comm, src)
        ds = DDStoreDataset(store, n_workers=workers)
        t0 = ctx.now
        result = yield from ds.fetch(list(range(16)))
        return ctx.now - t0, [g.sample_id for g in result.graphs]

    t1, ids1 = run_world(TESTBOX, 2, lambda c: main(c, 1), seed=5).results[0]
    t4, ids4 = run_world(TESTBOX, 2, lambda c: main(c, 4), seed=5).results[0]
    assert ids1 == ids4 == list(range(16))
    assert t4 < t1  # parallel issue + parallel decode
