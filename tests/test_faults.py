"""Fault-injection tests: plan builders, the rank fault model, and
world-level installation (straggler latency scaling, PFS storms)."""

import numpy as np
import pytest

from repro.faults import (
    Blackout,
    FaultPlan,
    PfsStorm,
    RankFaultModel,
    SlowRank,
    available_fault_plans,
    build_fault_plan,
    install_faults,
)
from repro.hardware import TESTBOX
from repro.mpi import run_world
from repro.mpi.comm import World
from repro.mpi.rma import create_window


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------

def test_builtin_plans_registered():
    names = available_fault_plans()
    for name in ("straggler-10x", "blackout", "pfs-storm"):
        assert name in names


def test_build_fault_plan_is_deterministic():
    a = build_fault_plan("straggler-10x", n_ranks=8, seed=3)
    b = build_fault_plan("straggler-10x", n_ranks=8, seed=3)
    assert a == b
    # The straggler never lands on rank 0 (the conventional root).
    for seed in range(20):
        plan = build_fault_plan("straggler-10x", n_ranks=8, seed=seed)
        (event,) = plan.events
        assert isinstance(event, SlowRank)
        assert 1 <= event.rank < 8
        assert event.multiplier == 10.0


def test_unknown_plan_name_rejected():
    with pytest.raises(ValueError, match="no-such-plan"):
        build_fault_plan("no-such-plan", n_ranks=4)


def test_event_validation():
    with pytest.raises(ValueError, match="multiplier"):
        SlowRank(rank=1, multiplier=0.5)
    with pytest.raises(ValueError, match="duration"):
        Blackout(rank=1, start_s=0.0, duration_s=-1.0)


# ---------------------------------------------------------------------------
# RankFaultModel arithmetic
# ---------------------------------------------------------------------------

def test_slow_rank_scales_only_matching_targets_in_window():
    model = RankFaultModel(
        (SlowRank(rank=2, multiplier=10.0, start_s=1.0, duration_s=1.0),)
    )
    targets = np.array([2, 3, 2, 2])
    starts = np.array([1.5, 1.5, 0.5, 2.5])  # in-window, wrong rank, early, late
    completions = starts + 0.1
    out = model.apply_batch(targets, starts, completions)
    assert out[0] == pytest.approx(1.5 + 1.0)  # scaled 10x
    assert out[1] == pytest.approx(1.6)  # different rank: untouched
    assert out[2] == pytest.approx(0.6)  # before the window
    assert out[3] == pytest.approx(2.6)  # after the window


def test_blackout_defers_completion_past_end():
    model = RankFaultModel((Blackout(rank=1, start_s=0.0, duration_s=2.0),))
    targets = np.array([1, 1])
    starts = np.array([0.5, 3.0])
    completions = starts + 0.1
    out = model.apply_batch(targets, starts, completions)
    # An in-blackout message lands only after the blackout lifts, still
    # paying its own transfer time on top.
    assert out[0] == pytest.approx(2.0 + 0.1)
    assert out[1] == pytest.approx(3.1)  # after the blackout: untouched


def test_apply_message_considers_both_endpoints():
    model = RankFaultModel((SlowRank(rank=4, multiplier=5.0),))
    healthy = model.apply_message(0, 1, 0.0, 0.1)
    as_src = model.apply_message(4, 1, 0.0, 0.1)
    as_dst = model.apply_message(1, 4, 0.0, 0.1)
    assert healthy == pytest.approx(0.1)
    assert as_src == pytest.approx(0.5)
    assert as_dst == pytest.approx(0.5)


def test_no_faulty_targets_is_identity():
    model = RankFaultModel((SlowRank(rank=7, multiplier=10.0),))
    completions = np.array([0.1, 0.2])
    out = model.apply_batch(np.array([0, 1]), np.zeros(2), completions)
    assert np.array_equal(out, completions)
    assert model.n_perturbed == 0


# ---------------------------------------------------------------------------
# world installation
# ---------------------------------------------------------------------------

def _get_latency(world, target):
    """One rank-0 RMA get from ``target``; returns its modelled latency."""

    def main(ctx):
        win = yield from create_window(ctx.comm, np.zeros(4096, np.uint8))
        lat = None
        if ctx.rank == 0:
            yield from win.lock(target)
            yield from win.get_batch([(target, 0, 4096)])
            lat = float(win.last_latencies[0])
            yield from win.unlock(target)
        yield from ctx.comm.barrier()
        return lat

    job = run_world(TESTBOX, 2, main, world=world)
    return job.results[0]


def test_install_faults_scales_rma_latency():
    healthy = _get_latency(World(TESTBOX, 2, seed=0), target=1)
    world = World(TESTBOX, 2, seed=0)
    install_faults(world, FaultPlan("t", (SlowRank(rank=1, multiplier=10.0),)))
    straggled = _get_latency(world, target=1)
    assert straggled == pytest.approx(10.0 * healthy)
    # A get to a healthy rank in the same faulted world is unaffected.
    world2 = World(TESTBOX, 2, seed=0)
    install_faults(world2, FaultPlan("t", (SlowRank(rank=1, multiplier=10.0),)))
    assert _get_latency(world2, target=2) == pytest.approx(
        _get_latency(World(TESTBOX, 2, seed=0), target=2)
    )


def test_install_faults_rejects_out_of_range_rank():
    world = World(TESTBOX, 2, seed=0)
    bad = FaultPlan("t", (SlowRank(rank=world.n_ranks, multiplier=2.0),))
    with pytest.raises(ValueError, match="rank"):
        install_faults(world, bad)


def test_pfs_storm_issues_metadata_ops():
    world = World(TESTBOX, 2, seed=0)
    storm = PfsStorm(start_s=0.0, duration_s=0.01, n_ops=50)
    install_faults(world, FaultPlan("storm", (storm,)))

    def main(ctx):
        yield from ctx.comm.barrier()
        yield ctx.engine.timeout(0.02)  # outlive the storm window

    run_world(TESTBOX, 2, main, world=world)
    assert world.pfs.metadata_ops >= 50
